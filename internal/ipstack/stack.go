package ipstack

import (
	"errors"
	"fmt"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// Config tunes a stack instance.
type Config struct {
	// MTU is the link MTU in bytes; TCP MSS is MTU−40. WAVNet's virtual
	// interfaces default to 1456 (1500 minus tunnel overhead).
	MTU int
	// RecvBuf / SendBuf are the per-connection TCP buffer sizes. The
	// defaults (1 MiB) exceed the bandwidth-delay product of the paper's
	// longest path (≈ 271 ms × 27 Mbit/s ≈ 915 KiB).
	RecvBuf, SendBuf int
	// ARPTimeout ages resolution cache entries (default 60 s).
	ARPTimeout sim.Duration
}

func (c Config) withDefaults() Config {
	if c.MTU <= 0 {
		c.MTU = 1456
	}
	if c.RecvBuf <= 0 {
		c.RecvBuf = 1 << 20
	}
	if c.SendBuf <= 0 {
		c.SendBuf = 1 << 20
	}
	if c.ARPTimeout <= 0 {
		c.ARPTimeout = 60 * sim.Second
	}
	return c
}

// Stack is one virtual host's protocol stack, bound to a NIC on the
// virtual LAN (a bridge port, pipe end, or WAVNet tap).
type Stack struct {
	eng  *sim.Engine
	name string
	nic  ether.NIC
	mac  ether.MAC
	ip   netsim.IP
	cfg  Config

	arp *arpCache

	// aliases are additional addresses this stack accepts traffic for —
	// service VIPs a backend answers on. Aliases never answer ARP (the
	// host's VIP table steers resolution) and never become the default
	// source address; connections accepted on an alias reply from it.
	aliases map[netsim.IP]bool

	udpPorts  map[uint16]*UDPSock
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16
	icmpSeq   uint16
	pingWait  map[uint32]*pingWaiter

	// Stats.
	FramesIn, FramesOut uint64
	IPIn, IPOut         uint64
	Drops               uint64
}

// New creates a stack with the given MAC and virtual IP, attached to nic.
func New(eng *sim.Engine, name string, nic ether.NIC, mac ether.MAC, ip netsim.IP, cfg Config) *Stack {
	s := &Stack{
		eng:       eng,
		name:      name,
		mac:       mac,
		ip:        ip,
		cfg:       cfg.withDefaults(),
		aliases:   make(map[netsim.IP]bool),
		udpPorts:  make(map[uint16]*UDPSock),
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		pingWait:  make(map[uint32]*pingWaiter),
		nextPort:  32768,
	}
	s.arp = newARPCache(s)
	s.SetNIC(nic)
	return s
}

// Name returns the stack's diagnostic name.
func (s *Stack) Name() string { return s.name }

// IP returns the stack's virtual address.
func (s *Stack) IP() netsim.IP { return s.ip }

// SetIP reassigns the stack's virtual address. A stack may start at
// 0.0.0.0 (unconfigured) and adopt an address later — the DHCP client
// path. Existing TCP connections keep their original addresses and will
// break, exactly as on a real host.
func (s *Stack) SetIP(ip netsim.IP) { s.ip = ip }

// MAC returns the stack's hardware address.
func (s *Stack) MAC() ether.MAC { return s.mac }

// AddAlias makes the stack accept traffic addressed to ip alongside its
// primary address — a service VIP the host backs. The stack never ARPs
// as the alias on its own; steering is the VIP table's job.
func (s *Stack) AddAlias(ip netsim.IP) { s.aliases[ip] = true }

// RemoveAlias stops accepting traffic for ip. Established connections
// keyed on the alias break, exactly like a withdrawn VIP should.
func (s *Stack) RemoveAlias(ip netsim.IP) { delete(s.aliases, ip) }

// HasAlias reports whether ip is a configured alias.
func (s *Stack) HasAlias(ip netsim.IP) bool { return s.aliases[ip] }

// Engine returns the simulation engine.
func (s *Stack) Engine() *sim.Engine { return s.eng }

// MTU returns the configured link MTU.
func (s *Stack) MTU() int { return s.cfg.MTU }

// SetNIC rebinds the stack to a different NIC (nil detaches it; frames
// are then dropped in both directions — the VM-paused state).
func (s *Stack) SetNIC(nic ether.NIC) {
	s.nic = nic
	if nic != nil {
		nic.SetRecv(s.onFrame)
	}
}

// NIC returns the current attachment.
func (s *Stack) NIC() ether.NIC { return s.nic }

// AnnounceGratuitousARP broadcasts this stack's MAC/IP binding — the
// post-migration announcement.
func (s *Stack) AnnounceGratuitousARP() {
	s.sendFrame(ether.GratuitousARP(s.mac, s.ip))
}

// AnnounceGratuitousARPFor broadcasts a MAC/IP binding for an alias —
// the VIP announcement a backend floods when it takes over a service
// address, re-pointing ARP caches and WAV-Switch tables fabric-wide.
func (s *Stack) AnnounceGratuitousARPFor(ip netsim.IP) {
	s.sendFrame(ether.GratuitousARP(s.mac, ip))
}

func (s *Stack) sendFrame(f *ether.Frame) {
	if s.nic == nil {
		s.Drops++
		return
	}
	s.FramesOut++
	s.nic.Send(f)
}

func (s *Stack) onFrame(f *ether.Frame) {
	if s.nic == nil {
		return
	}
	if f.Dst != s.mac && !f.Dst.IsBroadcast() {
		return // not for us (flooded frame)
	}
	s.FramesIn++
	switch f.Type {
	case ether.TypeARP:
		s.arp.onPacket(f)
	case ether.TypeIPv4:
		s.onIPv4(f)
	}
}

func (s *Stack) onIPv4(f *ether.Frame) {
	h, payload, err := unmarshalIPv4(f.Payload)
	if err != nil {
		s.Drops++
		return
	}
	if h.Dst == netsim.BroadcastIP {
		// Limited broadcast reaches every stack on the segment, including
		// unconfigured ones (the DHCP client case). Only UDP listens on
		// broadcast; echoing ICMP to broadcast would invite storms.
		s.IPIn++
		if h.Proto == ProtoUDP {
			s.onUDP(h, payload)
		}
		return
	}
	if h.Dst != s.ip && !s.aliases[h.Dst] {
		s.Drops++
		return
	}
	s.IPIn++
	switch h.Proto {
	case ProtoICMP:
		s.onICMP(h, payload)
	case ProtoUDP:
		s.onUDP(h, payload)
	case ProtoTCP:
		s.onTCP(h, payload)
	default:
		s.Drops++
	}
}

// sendIP resolves the destination and emits an IPv4 packet. Packets are
// queued while ARP resolution is in flight; broadcast skips ARP entirely.
func (s *Stack) sendIP(dst netsim.IP, proto uint8, payload []byte) {
	s.sendIPFrom(s.ip, dst, proto, payload)
}

// sendIPFrom is sendIP with an explicit source address: traffic owed to
// an alias (a VIP-addressed connection or echo) must reply from the
// alias, or the far end's demux would never match it.
func (s *Stack) sendIPFrom(src, dst netsim.IP, proto uint8, payload []byte) {
	if len(payload)+IPHeaderLen > s.cfg.MTU {
		panic(fmt.Sprintf("ipstack %s: packet exceeds MTU: %d", s.name, len(payload)+IPHeaderLen))
	}
	pkt := marshalIPv4(&ipv4Header{TTL: defaultTTL, Proto: proto, Src: src, Dst: dst}, payload)
	s.IPOut++
	if dst == netsim.BroadcastIP {
		s.sendFrame(&ether.Frame{Dst: ether.Broadcast, Src: s.mac, Type: ether.TypeIPv4, Payload: pkt})
		return
	}
	s.arp.sendResolved(dst, pkt)
}

// ---- ICMP ----

type pingWaiter struct {
	proc *sim.Proc
	sent sim.Time
	rtt  sim.Duration
	ok   bool
}

func (s *Stack) onICMP(h *ipv4Header, payload []byte) {
	m, err := unmarshalICMP(payload)
	if err != nil {
		s.Drops++
		return
	}
	switch m.Type {
	case ICMPEchoRequest:
		reply := *m
		reply.Type = ICMPEchoReply
		// Reply from the address the request was sent to — the primary or
		// an alias — so pinging a VIP looks like pinging a real host.
		s.sendIPFrom(h.Dst, h.Src, ProtoICMP, marshalICMP(&reply))
	case ICMPEchoReply:
		key := uint32(m.ID)<<16 | uint32(m.Seq)
		if w, ok := s.pingWait[key]; ok {
			delete(s.pingWait, key)
			w.rtt = s.eng.Now().Sub(w.sent)
			w.ok = true
			w.proc.Unpark()
		}
	}
}

// ErrTimeout is returned by blocking operations that exceed their
// deadline.
var ErrTimeout = errors.New("ipstack: timeout")

// ErrInterrupted is returned by blocking operations cut short by
// Proc.Interrupt — a stop request, not a protocol timeout.
var ErrInterrupted = errors.New("ipstack: interrupted")

// Ping sends an ICMP echo request with payloadLen data bytes and blocks
// the process until the reply or the timeout.
func (s *Stack) Ping(p *sim.Proc, dst netsim.IP, payloadLen int, timeout sim.Duration) (sim.Duration, error) {
	s.icmpSeq++
	seq := s.icmpSeq
	id := uint16(1)
	key := uint32(id)<<16 | uint32(seq)
	w := &pingWaiter{proc: p, sent: s.eng.Now()}
	s.pingWait[key] = w
	if payloadLen < 0 {
		payloadLen = 56
	}
	s.sendIP(dst, ProtoICMP, marshalICMP(&icmpEcho{
		Type: ICMPEchoRequest, ID: id, Seq: seq, Data: make([]byte, payloadLen),
	}))
	timer := sim.NewTimer(s.eng, func() {
		if _, still := s.pingWait[key]; still {
			delete(s.pingWait, key)
			p.Unpark()
		}
	})
	timer.Reset(timeout)
	for !w.ok {
		if _, still := s.pingWait[key]; !still && !w.ok {
			return 0, ErrTimeout
		}
		if !p.Park() {
			// Interrupted (service Stop, engine teardown): abandon the
			// wait instead of re-parking over the stop request.
			delete(s.pingWait, key)
			timer.Stop()
			return 0, ErrInterrupted
		}
	}
	timer.Stop()
	return w.rtt, nil
}

func (s *Stack) allocPort() (uint16, error) {
	for i := 0; i < 32768; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 32768
		}
		if p == 0 {
			continue
		}
		if _, udpBusy := s.udpPorts[p]; udpBusy {
			continue
		}
		if _, lnBusy := s.listeners[p]; lnBusy {
			continue
		}
		return p, nil
	}
	return 0, errors.New("ipstack: out of ephemeral ports")
}

// Conns returns the stack's active TCP connections (diagnostics).
func (s *Stack) Conns() []*Conn {
	out := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		out = append(out, c)
	}
	return out
}
