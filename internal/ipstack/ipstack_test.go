package ipstack

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// twoStacks wires two stacks over a LinkPipe with the given rate/delay.
func twoStacks(seed int64, rateBps float64, delay sim.Duration) (*sim.Engine, *Stack, *Stack) {
	eng := sim.NewEngine(seed)
	pipe := ether.NewLinkPipe(eng, rateBps, delay, 0)
	a := New(eng, "a", pipe.A, ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), Config{})
	b := New(eng, "b", pipe.B, ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), Config{})
	return eng, a, b
}

func TestHeaderRoundTrips(t *testing.T) {
	ip := &ipv4Header{TTL: 64, Proto: ProtoTCP, Src: netsim.MustParseIP("1.2.3.4"), Dst: netsim.MustParseIP("5.6.7.8")}
	h, payload, err := unmarshalIPv4(marshalIPv4(ip, []byte("data")))
	if err != nil || h.Src != ip.Src || h.Dst != ip.Dst || h.Proto != ProtoTCP || string(payload) != "data" {
		t.Fatalf("ipv4 round trip: %+v %q %v", h, payload, err)
	}
	seg := &tcpSegment{SrcPort: 80, DstPort: 8080, Seq: 42, Ack: 17, Flags: flagACK | flagPSH, Wnd: 1 << 20, Payload: []byte("xyz")}
	got, err := unmarshalTCP(marshalTCP(seg))
	if err != nil || got.SrcPort != 80 || got.Seq != 42 || got.Ack != 17 || !got.has(flagPSH) ||
		got.Wnd != 1<<20 || string(got.Payload) != "xyz" {
		t.Fatalf("tcp round trip: %+v %v", got, err)
	}
	u, data, err := unmarshalUDP(marshalUDP(53, 5353, []byte("q")))
	if err != nil || u.Src != 53 || u.Dst != 5353 || string(data) != "q" {
		t.Fatalf("udp round trip: %+v %v", u, err)
	}
	ic, err := unmarshalICMP(marshalICMP(&icmpEcho{Type: ICMPEchoRequest, ID: 7, Seq: 9, Data: []byte("p")}))
	if err != nil || ic.ID != 7 || ic.Seq != 9 || string(ic.Data) != "p" {
		t.Fatalf("icmp round trip: %+v %v", ic, err)
	}
}

func TestPropertyCodecsNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		unmarshalIPv4(b)
		unmarshalTCP(b)
		unmarshalUDP(b)
		unmarshalICMP(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	if !seqLT(0xFFFFFFF0, 0x10) {
		t.Fatal("wraparound comparison failed")
	}
	if seqGT(5, 5) || !seqGEQ(5, 5) || !seqLEQ(5, 5) {
		t.Fatal("equality comparisons wrong")
	}
	if seqMax(0xFFFFFFF0, 0x10) != 0x10 {
		t.Fatal("seqMax ignores wraparound")
	}
}

func TestPingRTT(t *testing.T) {
	eng, a, b := twoStacks(1, 0, 10*time.Millisecond)
	_ = b
	var rtt sim.Duration
	var err error
	eng.Spawn("ping", func(p *sim.Proc) {
		rtt, err = a.Ping(p, netsim.MustParseIP("10.0.0.2"), 56, 5*time.Second)
	})
	eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// First ping pays ARP resolution: RTT still equals 2×delay because
	// the queued packet flushes immediately on reply... ARP adds one
	// round trip before the ICMP one.
	if rtt < 20*time.Millisecond || rtt > 45*time.Millisecond {
		t.Fatalf("rtt = %v", rtt)
	}
	// Second ping uses the cache: exactly 20ms.
	eng.Spawn("ping2", func(p *sim.Proc) {
		rtt, err = a.Ping(p, netsim.MustParseIP("10.0.0.2"), 56, 5*time.Second)
	})
	eng.Run()
	if err != nil || rtt != 20*time.Millisecond {
		t.Fatalf("cached-ARP rtt = %v err=%v", rtt, err)
	}
}

func TestPingTimeout(t *testing.T) {
	eng, a, _ := twoStacks(2, 0, time.Millisecond)
	var err error
	eng.Spawn("ping", func(p *sim.Proc) {
		_, err = a.Ping(p, netsim.MustParseIP("10.0.0.99"), 56, 100*time.Millisecond)
	})
	eng.Run()
	if err != ErrTimeout {
		t.Fatalf("err = %v, want timeout", err)
	}
}

func TestGratuitousARPUpdatesCache(t *testing.T) {
	eng := sim.NewEngine(3)
	br := ether.NewBridge(eng, "br", time.Microsecond)
	a := New(eng, "a", br.AddPort("p0"), ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), Config{})
	b := New(eng, "b", br.AddPort("p1"), ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), Config{})
	eng.Spawn("ping", func(p *sim.Proc) {
		if _, err := a.Ping(p, b.IP(), 8, time.Second); err != nil {
			t.Errorf("ping: %v", err)
		}
	})
	eng.Run()
	// A "new host" claims b's IP with a different MAC via gratuitous ARP.
	c := New(eng, "c", br.AddPort("p2"), ether.SeqMAC(3), netsim.MustParseIP("10.0.0.2"), Config{})
	_ = c
	c.AnnounceGratuitousARP()
	eng.Run()
	if mac, ok := a.arp.lookup(netsim.MustParseIP("10.0.0.2")); !ok || mac != ether.SeqMAC(3) {
		t.Fatalf("gratuitous ARP did not update cache: %v %v", mac, ok)
	}
}

func TestUDPSendRecv(t *testing.T) {
	eng, a, b := twoStacks(4, 0, 5*time.Millisecond)
	srv, err := b.BindUDP(9000, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got Datagram
	eng.Spawn("server", func(p *sim.Proc) {
		got, _ = srv.Recv(p)
		// Echo back.
		srv.SendTo(got.From, append([]byte("re:"), got.Payload...))
	})
	var reply Datagram
	eng.Spawn("client", func(p *sim.Proc) {
		cli, _ := a.BindUDP(0, nil)
		cli.SendTo(netsim.Addr{IP: b.IP(), Port: 9000}, []byte("hello"))
		reply, _ = cli.Recv(p)
	})
	eng.Run()
	if string(got.Payload) != "hello" || string(reply.Payload) != "re:hello" {
		t.Fatalf("udp exchange: %q %q", got.Payload, reply.Payload)
	}
}

func TestUDPOversizeRejected(t *testing.T) {
	_, a, _ := twoStacks(5, 0, time.Millisecond)
	s, _ := a.BindUDP(0, nil)
	if err := s.SendTo(netsim.Addr{IP: netsim.MustParseIP("10.0.0.2"), Port: 1}, make([]byte, 5000)); err == nil {
		t.Fatal("oversize datagram accepted")
	}
}

func TestTCPConnectTransferClose(t *testing.T) {
	eng, a, b := twoStacks(6, 0, 5*time.Millisecond)
	msg := []byte("the quick brown fox jumps over the lazy dog")
	var served []byte
	var srvErr error
	eng.Spawn("server", func(p *sim.Proc) {
		l, err := b.Listen(8080)
		if err != nil {
			srvErr = err
			return
		}
		c, err := l.Accept(p)
		if err != nil {
			srvErr = err
			return
		}
		buf := make([]byte, 1024)
		for {
			n, err := c.Read(p, buf)
			served = append(served, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				srvErr = err
				return
			}
		}
		c.Write(p, []byte("ok"))
		c.Close()
	})
	var reply []byte
	var cliErr error
	eng.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 8080})
		if err != nil {
			cliErr = err
			return
		}
		c.Write(p, msg)
		c.Close()
		buf := make([]byte, 64)
		for {
			n, err := c.Read(p, buf)
			reply = append(reply, buf[:n]...)
			if err != nil {
				break
			}
		}
	})
	eng.Run()
	if srvErr != nil || cliErr != nil {
		t.Fatalf("errors: server=%v client=%v", srvErr, cliErr)
	}
	if !bytes.Equal(served, msg) {
		t.Fatalf("server got %q", served)
	}
	if string(reply) != "ok" {
		t.Fatalf("client got %q", reply)
	}
}

func TestTCPRefusedPort(t *testing.T) {
	eng, a, b := twoStacks(7, 0, time.Millisecond)
	var err error
	eng.Spawn("client", func(p *sim.Proc) {
		_, err = a.Dial(p, netsim.Addr{IP: b.IP(), Port: 1234})
	})
	eng.Run()
	if err != ErrRefused {
		t.Fatalf("err = %v, want refused", err)
	}
}

// transfer runs a bulk one-way transfer of total bytes and returns the
// virtual time it took.
func transfer(t *testing.T, seed int64, rateBps float64, delay sim.Duration, total int, lossRate float64) sim.Duration {
	return transferQueued(t, seed, rateBps, delay, total, lossRate, 64<<10)
}

func transferQueued(t *testing.T, seed int64, rateBps float64, delay sim.Duration, total int, lossRate float64, queue int) sim.Duration {
	t.Helper()
	eng := sim.NewEngine(seed)
	pipe := ether.NewLinkPipe(eng, rateBps, delay, queue)
	var nicA ether.NIC = pipe.A
	if lossRate > 0 {
		nicA = ether.Impair(pipe.A, lossRate, eng.Rand())
	}
	a := New(eng, "a", nicA, ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), Config{})
	b := New(eng, "b", pipe.B, ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), Config{})

	var done sim.Time
	var rxBytes int
	eng.Spawn("server", func(p *sim.Proc) {
		l, _ := b.Listen(5001)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		for {
			n, err := c.Read(p, buf)
			rxBytes += n
			if err != nil {
				break
			}
		}
		done = p.Now()
	})
	eng.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 5001})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		chunk := make([]byte, 16384)
		sent := 0
		for sent < total {
			n := total - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			c.Write(p, chunk[:n])
			sent += n
		}
		c.Close()
	})
	eng.Run()
	if rxBytes != total {
		t.Fatalf("received %d of %d bytes", rxBytes, total)
	}
	return done.Sub(0)
}

func TestTCPBulkThroughputNearLineRate(t *testing.T) {
	// 10 Mbps link, 10 ms one-way: 4 MB should take ≈ 3.4 s (goodput
	// ratio ≈ 1416/1498 ≈ 0.95 of line rate).
	total := 4 << 20
	elapsed := transfer(t, 8, 10e6, 10*time.Millisecond, total, 0)
	mbps := float64(total) * 8 / elapsed.Seconds() / 1e6
	if mbps < 8.5 || mbps > 10 {
		t.Fatalf("goodput %.2f Mbps over a 10 Mbps link", mbps)
	}
}

func TestTCPLongFatPipe(t *testing.T) {
	// 50 Mbps with 100 ms one-way (BDP = 1.25 MB) needs a large window;
	// with a BDP-scaled router buffer our 1 MB windows should reach at
	// least half of line rate despite Reno sawtooth dynamics.
	total := 24 << 20
	elapsed := transferQueued(t, 9, 50e6, 100*time.Millisecond, total, 0, 512<<10)
	mbps := float64(total) * 8 / elapsed.Seconds() / 1e6
	if mbps < 25 {
		t.Fatalf("goodput %.2f Mbps over 50 Mbps × 200 ms RTT", mbps)
	}
}

func TestTCPSurvivesLoss(t *testing.T) {
	// 2% frame loss: the transfer must complete correctly (retransmits),
	// at reduced but nonzero throughput.
	total := 1 << 20
	elapsed := transfer(t, 10, 10e6, 5*time.Millisecond, total, 0.02)
	mbps := float64(total) * 8 / elapsed.Seconds() / 1e6
	if mbps < 1 {
		t.Fatalf("goodput %.2f Mbps under 2%% loss", mbps)
	}
}

func TestTCPFlowControlSlowReader(t *testing.T) {
	eng, a, b := twoStacks(11, 0, time.Millisecond)
	total := 3 << 20
	var rx int
	eng.Spawn("server", func(p *sim.Proc) {
		l, _ := b.Listen(5001)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 32<<10)
		for {
			// Read slowly: 32 KB every 50 ms ≈ 5.2 Mbps ceiling.
			p.Sleep(50 * time.Millisecond)
			n, err := c.ReadFull(p, buf)
			rx += n
			if err != nil {
				break
			}
		}
	})
	var sendDone sim.Time
	eng.Spawn("client", func(p *sim.Proc) {
		c, _ := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 5001})
		chunk := make([]byte, 64<<10)
		for sent := 0; sent < total; sent += len(chunk) {
			c.Write(p, chunk)
		}
		c.Close()
		sendDone = p.Now()
	})
	eng.Run()
	if rx != total {
		t.Fatalf("reader got %d of %d", rx, total)
	}
	// The writer must have been throttled by flow control: with 2 MB of
	// buffers in the path, a 3 MB send can't finish before the reader
	// has consumed at least ~1 MB (≈ 1.6 s at the reader's pace).
	if sendDone < sim.Time(time.Second) {
		t.Fatalf("writer finished at %v; flow control absent", sendDone)
	}
}

func TestTCPBidirectional(t *testing.T) {
	eng, a, b := twoStacks(12, 100e6, 2*time.Millisecond)
	total := 256 << 10
	check := func(c *Conn, p *sim.Proc, name string) {
		chunk := make([]byte, 8192)
		rx, tx := 0, 0
		buf := make([]byte, 8192)
		for tx < total {
			c.Write(p, chunk)
			tx += len(chunk)
			n, err := c.Read(p, buf)
			rx += n
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
		}
		for rx < total {
			n, err := c.Read(p, buf)
			rx += n
			if err != nil && rx < total {
				t.Errorf("%s rx=%d: %v", name, rx, err)
				return
			}
		}
	}
	eng.Spawn("server", func(p *sim.Proc) {
		l, _ := b.Listen(7000)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		check(c, p, "server")
	})
	eng.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 7000})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		check(c, p, "client")
	})
	eng.Run()
}

func TestTCPResetOnAbort(t *testing.T) {
	eng, a, b := twoStacks(13, 0, time.Millisecond)
	var readErr error
	eng.Spawn("server", func(p *sim.Proc) {
		l, _ := b.Listen(8000)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		_, readErr = c.Read(p, buf)
	})
	eng.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 8000})
		if err != nil {
			return
		}
		p.Sleep(50 * time.Millisecond)
		c.Abort()
	})
	eng.Run()
	if readErr != ErrConnReset {
		t.Fatalf("read err = %v, want reset", readErr)
	}
}

func TestTCPManyParallelConns(t *testing.T) {
	eng, a, b := twoStacks(14, 100e6, 2*time.Millisecond)
	const n = 20
	perConn := 128 << 10
	got := make([]int, n)
	eng.Spawn("server", func(p *sim.Proc) {
		l, _ := b.Listen(80)
		for i := 0; i < n; i++ {
			c, err := l.Accept(p)
			if err != nil {
				return
			}
			i := i
			eng.Spawn("srv-conn", func(p *sim.Proc) {
				buf := make([]byte, 32<<10)
				for {
					nn, err := c.Read(p, buf)
					got[i] += nn
					if err != nil {
						return
					}
				}
			})
		}
	})
	for i := 0; i < n; i++ {
		eng.Spawn("client", func(p *sim.Proc) {
			c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 80})
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			chunk := make([]byte, 16384)
			for sent := 0; sent < perConn; sent += len(chunk) {
				c.Write(p, chunk)
			}
			c.Close()
		})
	}
	eng.Run()
	for i, g := range got {
		if g != perConn {
			t.Fatalf("conn %d received %d of %d", i, g, perConn)
		}
	}
}

func TestTCPDataIntegrityUnderLoss(t *testing.T) {
	// Patterned payload must arrive intact and in order despite loss.
	eng := sim.NewEngine(15)
	pipe := ether.NewLinkPipe(eng, 20e6, 5*time.Millisecond, 0)
	lossy := ether.Impair(pipe.A, 0.03, eng.Rand())
	a := New(eng, "a", lossy, ether.SeqMAC(1), netsim.MustParseIP("10.0.0.1"), Config{})
	b := New(eng, "b", pipe.B, ether.SeqMAC(2), netsim.MustParseIP("10.0.0.2"), Config{})
	total := 512 << 10
	pattern := func(i int) byte { return byte(i*31 + i>>8) }
	var bad bool
	var rx int
	eng.Spawn("server", func(p *sim.Proc) {
		l, _ := b.Listen(5001)
		c, err := l.Accept(p)
		if err != nil {
			return
		}
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(p, buf)
			for i := 0; i < n; i++ {
				if buf[i] != pattern(rx+i) {
					bad = true
				}
			}
			rx += n
			if err != nil {
				return
			}
		}
	})
	eng.Spawn("client", func(p *sim.Proc) {
		c, err := a.Dial(p, netsim.Addr{IP: b.IP(), Port: 5001})
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		chunk := make([]byte, 8192)
		for sent := 0; sent < total; sent += len(chunk) {
			for i := range chunk {
				chunk[i] = pattern(sent + i)
			}
			c.Write(p, chunk)
		}
		c.Close()
	})
	eng.Run()
	if rx != total || bad {
		t.Fatalf("integrity: rx=%d bad=%v", rx, bad)
	}
}

func TestStackDetachDropsTraffic(t *testing.T) {
	eng, a, b := twoStacks(16, 0, time.Millisecond)
	var err1, err2 error
	eng.Spawn("pings", func(p *sim.Proc) {
		_, err1 = a.Ping(p, b.IP(), 8, time.Second)
		b.SetNIC(nil) // detach (VM paused)
		_, err2 = a.Ping(p, b.IP(), 8, 500*time.Millisecond)
	})
	eng.Run()
	if err1 != nil {
		t.Fatalf("pre-detach ping failed: %v", err1)
	}
	if err2 != ErrTimeout {
		t.Fatalf("post-detach ping err = %v, want timeout", err2)
	}
}
