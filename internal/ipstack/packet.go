// Package ipstack is the guest protocol stack that runs on top of the
// virtual link layer: ARP resolution, IPv4, ICMP echo, UDP sockets and a
// TCP Reno implementation with slow start, congestion avoidance, fast
// retransmit/recovery and RTO estimation.
//
// Every byte the paper's workloads (ping, ttcp, netperf, ApacheBench,
// MPI) move across WAVNet flows through this stack, over Ethernet frames,
// so the measured dynamics — bandwidth ramp-up, loss recovery, latency
// inflation under queueing — emerge from protocol behaviour rather than
// closed-form formulas.
//
// Deviations from wire-standard TCP/IP, chosen for simulation economy and
// documented here: header checksums are not computed (the simulated
// links do not corrupt bytes), the TCP header carries a 32-bit window (no
// window-scaling option), there is no IP fragmentation (senders respect
// the MTU), and TIME_WAIT is shortened to one second.
package ipstack

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/netsim"
)

// IP protocol numbers.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Header sizes.
const (
	IPHeaderLen   = 20
	ICMPHeaderLen = 8
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
)

// ipv4Header is the decoded IPv4 header (no options).
type ipv4Header struct {
	TotalLen int
	TTL      uint8
	Proto    uint8
	Src, Dst netsim.IP
}

const defaultTTL = 64

func marshalIPv4(h *ipv4Header, payload []byte) []byte {
	b := make([]byte, IPHeaderLen+len(payload))
	b[0] = 0x45
	binary.BigEndian.PutUint16(b[2:], uint16(IPHeaderLen+len(payload)))
	b[8] = h.TTL
	b[9] = h.Proto
	binary.BigEndian.PutUint32(b[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(h.Dst))
	copy(b[IPHeaderLen:], payload)
	return b
}

func unmarshalIPv4(b []byte) (*ipv4Header, []byte, error) {
	if len(b) < IPHeaderLen {
		return nil, nil, errors.New("ipstack: short IPv4 packet")
	}
	if b[0]>>4 != 4 {
		return nil, nil, errors.New("ipstack: not IPv4")
	}
	h := &ipv4Header{
		TotalLen: int(binary.BigEndian.Uint16(b[2:])),
		TTL:      b[8],
		Proto:    b[9],
		Src:      netsim.IP(binary.BigEndian.Uint32(b[12:])),
		Dst:      netsim.IP(binary.BigEndian.Uint32(b[16:])),
	}
	if h.TotalLen < IPHeaderLen || h.TotalLen > len(b) {
		return nil, nil, errors.New("ipstack: bad IPv4 length")
	}
	return h, b[IPHeaderLen:h.TotalLen], nil
}

// ICMP types.
const (
	ICMPEchoReply   = 0
	ICMPEchoRequest = 8
)

type icmpEcho struct {
	Type    uint8
	ID, Seq uint16
	Data    []byte
}

func marshalICMP(m *icmpEcho) []byte {
	b := make([]byte, ICMPHeaderLen+len(m.Data))
	b[0] = m.Type
	binary.BigEndian.PutUint16(b[4:], m.ID)
	binary.BigEndian.PutUint16(b[6:], m.Seq)
	copy(b[ICMPHeaderLen:], m.Data)
	return b
}

func unmarshalICMP(b []byte) (*icmpEcho, error) {
	if len(b) < ICMPHeaderLen {
		return nil, errors.New("ipstack: short ICMP")
	}
	return &icmpEcho{
		Type: b[0],
		ID:   binary.BigEndian.Uint16(b[4:]),
		Seq:  binary.BigEndian.Uint16(b[6:]),
		Data: b[ICMPHeaderLen:],
	}, nil
}

type udpHeader struct {
	Src, Dst uint16
	Len      int
}

func marshalUDP(src, dst uint16, payload []byte) []byte {
	b := make([]byte, UDPHeaderLen+len(payload))
	binary.BigEndian.PutUint16(b[0:], src)
	binary.BigEndian.PutUint16(b[2:], dst)
	binary.BigEndian.PutUint16(b[4:], uint16(UDPHeaderLen+len(payload)))
	copy(b[UDPHeaderLen:], payload)
	return b
}

func unmarshalUDP(b []byte) (*udpHeader, []byte, error) {
	if len(b) < UDPHeaderLen {
		return nil, nil, errors.New("ipstack: short UDP")
	}
	h := &udpHeader{
		Src: binary.BigEndian.Uint16(b[0:]),
		Dst: binary.BigEndian.Uint16(b[2:]),
		Len: int(binary.BigEndian.Uint16(b[4:])),
	}
	if h.Len < UDPHeaderLen || h.Len > len(b) {
		return nil, nil, errors.New("ipstack: bad UDP length")
	}
	return h, b[UDPHeaderLen:h.Len], nil
}

// TCP flag bits.
const (
	flagFIN = 1 << 0
	flagSYN = 1 << 1
	flagRST = 1 << 2
	flagPSH = 1 << 3
	flagACK = 1 << 4
)

// maxSACKBlocks bounds the SACK ranges carried per ACK. Real TCP fits
// only 3-4 in the option space and compensates with block rotation
// across dup ACKs; we carry more blocks per ACK instead (the bytes are
// accounted on the wire), which converges to the same scoreboard.
const maxSACKBlocks = 16

// tcpSegment is the decoded form of this stack's TCP header: standard
// fields, a 32-bit advertised window in place of window scaling, and up
// to four SACK blocks carried inline (8 bytes each, after the fixed
// header).
type tcpSegment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Wnd              uint32
	SACK             [][2]uint32
	Payload          []byte
}

func marshalTCP(s *tcpSegment) []byte {
	ns := len(s.SACK)
	if ns > maxSACKBlocks {
		ns = maxSACKBlocks
	}
	b := make([]byte, TCPHeaderLen+8*ns+len(s.Payload))
	binary.BigEndian.PutUint16(b[0:], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:], s.DstPort)
	binary.BigEndian.PutUint32(b[4:], s.Seq)
	binary.BigEndian.PutUint32(b[8:], s.Ack)
	b[12] = s.Flags
	b[13] = byte(ns)
	binary.BigEndian.PutUint32(b[14:], s.Wnd)
	binary.BigEndian.PutUint16(b[18:], uint16(len(s.Payload)))
	off := TCPHeaderLen
	for i := 0; i < ns; i++ {
		binary.BigEndian.PutUint32(b[off:], s.SACK[i][0])
		binary.BigEndian.PutUint32(b[off+4:], s.SACK[i][1])
		off += 8
	}
	copy(b[off:], s.Payload)
	return b
}

func unmarshalTCP(b []byte) (*tcpSegment, error) {
	if len(b) < TCPHeaderLen {
		return nil, errors.New("ipstack: short TCP segment")
	}
	s := &tcpSegment{
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Seq:     binary.BigEndian.Uint32(b[4:]),
		Ack:     binary.BigEndian.Uint32(b[8:]),
		Flags:   b[12],
		Wnd:     binary.BigEndian.Uint32(b[14:]),
	}
	ns := int(b[13])
	if ns > maxSACKBlocks {
		return nil, errors.New("ipstack: bad SACK count")
	}
	plen := int(binary.BigEndian.Uint16(b[18:]))
	off := TCPHeaderLen
	if off+8*ns+plen > len(b) {
		return nil, errors.New("ipstack: bad TCP payload length")
	}
	for i := 0; i < ns; i++ {
		s.SACK = append(s.SACK, [2]uint32{
			binary.BigEndian.Uint32(b[off:]),
			binary.BigEndian.Uint32(b[off+4:]),
		})
		off += 8
	}
	s.Payload = b[off : off+plen]
	return s, nil
}

func (s *tcpSegment) has(flag uint8) bool { return s.Flags&flag != 0 }

func (s *tcpSegment) String() string {
	fl := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{flagSYN, "S"}, {flagACK, "."}, {flagFIN, "F"}, {flagRST, "R"}, {flagPSH, "P"}} {
		if s.has(f.bit) {
			fl += f.name
		}
	}
	return fmt.Sprintf("tcp %d->%d seq=%d ack=%d [%s] len=%d wnd=%d",
		s.SrcPort, s.DstPort, s.Seq, s.Ack, fl, len(s.Payload), s.Wnd)
}

// Modular 32-bit sequence comparisons.
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
