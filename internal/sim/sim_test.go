package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != Time(30*time.Millisecond) {
		t.Fatalf("clock = %v, want 30ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel must not panic.
	e.Cancel(ev)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []int
	e.Schedule(10*time.Millisecond, func() { fired = append(fired, 1) })
	e.Schedule(30*time.Millisecond, func() { fired = append(fired, 2) })
	e.RunUntil(Time(20 * time.Millisecond))
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want just first event", fired)
	}
	if e.Now() != Time(20*time.Millisecond) {
		t.Fatalf("clock = %v, want exactly 20ms", e.Now())
	}
	e.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Microsecond, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(50 * time.Millisecond)
		wake = p.Now()
	})
	e.Run()
	if wake != Time(50*time.Millisecond) {
		t.Fatalf("woke at %v, want 50ms", wake)
	}
}

func TestProcParkUnpark(t *testing.T) {
	e := NewEngine(1)
	var a *Proc
	order := []string{}
	a = e.Spawn("a", func(p *Proc) {
		order = append(order, "a-park")
		p.Park()
		order = append(order, "a-resume")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, "b-unpark")
		a.Unpark()
	})
	e.Run()
	want := []string{"a-park", "b-unpark", "a-resume"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestProcInterrupt(t *testing.T) {
	e := NewEngine(1)
	var completed, sleptFull bool
	p := e.Spawn("s", func(p *Proc) {
		sleptFull = p.Sleep(time.Hour)
		completed = true
	})
	e.Spawn("i", func(q *Proc) {
		q.Sleep(time.Millisecond)
		p.Interrupt()
	})
	e.Run()
	if !completed {
		t.Fatal("interrupted proc did not continue")
	}
	if sleptFull {
		t.Fatal("Sleep reported full sleep despite interrupt")
	}
	if e.Now() >= Time(time.Hour) {
		t.Fatalf("clock ran to %v; interrupt did not cancel wake event", e.Now())
	}
}

func TestEngineStopUnwindsProcs(t *testing.T) {
	e := NewEngine(1)
	deferred := false
	e.Spawn("p", func(p *Proc) {
		defer func() { deferred = true }()
		p.Park() // nobody will unpark
	})
	e.Schedule(time.Millisecond, func() { e.Stop() })
	e.Run()
	if !deferred {
		t.Fatal("deferred cleanup did not run on Stop")
	}
}

func TestWaitQueueSignal(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	got := []int{}
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			got = append(got, i)
		})
	}
	e.Spawn("sig", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Signal()
		p.Sleep(time.Millisecond)
		q.Broadcast()
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("only %d waiters woke: %v", len(got), got)
	}
	if got[0] != 0 {
		t.Fatalf("Signal woke %d, want FIFO order (0 first)", got[0])
	}
}

func TestSemaphore(t *testing.T) {
	e := NewEngine(1)
	s := NewSemaphore(2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		e.Spawn("worker", func(p *Proc) {
			s.Acquire(p)
			active++
			if active > maxActive {
				maxActive = active
			}
			p.Sleep(10 * time.Millisecond)
			active--
			s.Release()
		})
	}
	e.Run()
	if maxActive != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxActive)
	}
}

func TestTimerResetStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Reset(10 * time.Millisecond)
	tm.Reset(20 * time.Millisecond) // supersedes
	e.RunUntil(Time(15 * time.Millisecond))
	if count != 0 {
		t.Fatal("timer fired from superseded schedule")
	}
	e.Run()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	tm.Reset(time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop did not report pending timer")
	}
	e.Run()
	if count != 1 {
		t.Fatalf("stopped timer fired")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, time.Second, func() { n++ })
	e.RunUntil(Time(5500 * time.Millisecond))
	tk.Stop()
	e.Run()
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var log []Time
		for i := 0; i < 20; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
					p.Sleep(d)
					log = append(log, p.Now())
				}
			})
		}
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for any batch of non-negative delays, events fire in
// non-decreasing time order and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delaysMS []uint8) bool {
		e := NewEngine(7)
		var last Time = -1
		ok := true
		var max Duration
		for _, ms := range delaysMS {
			d := time.Duration(ms) * time.Millisecond
			if d > max {
				max = d
			}
			e.Schedule(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		if len(delaysMS) > 0 && e.Now() != Time(max) {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine(1)
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(0, fn)
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}
