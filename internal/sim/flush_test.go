package sim

import (
	"testing"
	"time"
)

// The sticky-interrupt contract: Interrupt marks the proc, and every
// Park/Sleep — current or future — returns false until ClearInterrupt,
// so a stop request propagates out of arbitrarily nested wait loops.

func TestInterruptStickyBeforePark(t *testing.T) {
	e := NewEngine(1)
	var slept bool
	sawFlag := false
	p := e.Spawn("s", func(p *Proc) {
		p.Sleep(10 * time.Millisecond) // let the interrupter run first
		sawFlag = p.Interrupted()
		slept = p.Sleep(time.Hour)
	})
	e.Spawn("i", func(q *Proc) {
		q.Sleep(5 * time.Millisecond)
		p.Interrupt()
	})
	e.Run()
	if !sawFlag {
		t.Fatal("Interrupted() false after Interrupt on a running proc")
	}
	if slept {
		t.Fatal("Sleep succeeded with a pending interrupt")
	}
	if e.Now() >= Time(time.Hour) {
		t.Fatalf("pre-park check did not fire: clock ran to %v", e.Now())
	}
}

func TestInterruptPropagatesAcrossWaits(t *testing.T) {
	e := NewEngine(1)
	falses := 0
	p := e.Spawn("s", func(p *Proc) {
		// Every wait after the interrupt must refuse, not just the one
		// that was live when it landed.
		for i := 0; i < 3; i++ {
			if !p.Sleep(time.Minute) {
				falses++
			}
		}
	})
	e.Spawn("i", func(q *Proc) {
		q.Sleep(time.Millisecond)
		p.Interrupt()
	})
	e.Run()
	if falses != 3 {
		t.Fatalf("%d of 3 waits refused, want all (sticky flag lost)", falses)
	}
	if e.Now() > Time(2*time.Minute) {
		t.Fatalf("later waits parked anyway: clock at %v", e.Now())
	}
}

func TestClearInterruptRestoresWaiting(t *testing.T) {
	e := NewEngine(1)
	var afterClear bool
	p := e.Spawn("s", func(p *Proc) {
		if p.Sleep(time.Hour) {
			t.Error("interrupted Sleep reported success")
		}
		p.ClearInterrupt()
		if p.Interrupted() {
			t.Error("flag survived ClearInterrupt")
		}
		afterClear = p.Sleep(10 * time.Millisecond)
	})
	e.Spawn("i", func(q *Proc) {
		q.Sleep(time.Millisecond)
		p.Interrupt()
	})
	e.Run()
	if !afterClear {
		t.Fatal("Sleep after ClearInterrupt did not complete")
	}
}

// AtTimeEnd flushers run after the last runnable event of the current
// timestamp and before the clock advances — the egress batcher's hook.

func TestAtTimeEndRunsAfterInstant(t *testing.T) {
	e := NewEngine(1)
	var order []string
	at := time.Millisecond
	e.Schedule(at, func() {
		order = append(order, "ev1")
		e.AtTimeEnd(func() { order = append(order, "flush@"+e.Now().String()) })
	})
	e.Schedule(at, func() { order = append(order, "ev2") })
	e.Schedule(2*at, func() { order = append(order, "later") })
	e.Run()
	want := []string{"ev1", "ev2", "flush@" + Time(at).String(), "later"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAtTimeEndIgnoresCancelledHead(t *testing.T) {
	e := NewEngine(1)
	var flushedAt Time
	var ev *Event
	e.Schedule(time.Millisecond, func() {
		e.AtTimeEnd(func() { flushedAt = e.Now() })
		// A cancelled same-instant event must not defer the flush to a
		// later timestamp.
		e.Cancel(ev)
	})
	ev = e.Schedule(time.Millisecond, func() {})
	e.Schedule(5*time.Millisecond, func() {})
	e.Run()
	if flushedAt != Time(time.Millisecond) {
		t.Fatalf("flushed at %v, want 1ms (cancelled head deferred it)", flushedAt)
	}
}

func TestAtTimeEndFlusherSchedulesSameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Schedule(time.Millisecond, func() {
		e.AtTimeEnd(func() {
			order = append(order, "flush1")
			// A flush may emit follow-on work at the same timestamp (a
			// delivered batch triggering more sends); it runs after this
			// flush, and a flusher it registers runs in a second pass.
			e.Schedule(0, func() {
				order = append(order, "followup")
				e.AtTimeEnd(func() { order = append(order, "flush2") })
			})
		})
	})
	e.Run()
	want := []string{"flush1", "followup", "flush2"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if e.Now() != Time(time.Millisecond) {
		t.Fatalf("clock advanced to %v during same-instant flushing", e.Now())
	}
}

func TestAtTimeEndRegistrationOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(time.Millisecond, func() {
		for i := 0; i < 4; i++ {
			i := i
			e.AtTimeEnd(func() { order = append(order, i) })
		}
	})
	e.Run()
	if len(order) != 4 {
		t.Fatalf("ran %d flushers, want 4", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("flushers out of registration order: %v", order)
		}
	}
}
