package sim

import (
	"errors"
	"fmt"
)

// ErrStopped is the panic value used to unwind a parked process when the
// engine shuts down. Process bodies should not recover it; the spawn
// wrapper does.
var ErrStopped = errors.New("sim: engine stopped")

// Proc is a simulation process: a goroutine whose execution is interleaved
// with the event loop so that at most one simulation goroutine runs at any
// instant. Inside a Proc, code may call Sleep, Park and the blocking
// helpers of higher-level packages (sockets, queues) as if they were
// ordinary blocking calls.
type Proc struct {
	eng    *Engine
	name   string
	resume chan procSignal
	yield  chan struct{}
	parked bool
	dead   bool

	// wake event for Sleep, so Interrupt can cancel it.
	sleepEv *Event

	interrupted bool
}

type procSignal int

const (
	sigRun procSignal = iota
	sigStop
	sigInterrupt
)

// Spawn starts fn as a new process immediately (at the current virtual
// time, as a scheduled event). The name is used in diagnostics only.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan procSignal),
		yield:  make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		sig := <-p.resume // wait for first activation
		if sig != sigStop {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if err, ok := r.(error); !ok || !errors.Is(err, ErrStopped) {
							panic(r) // real bug: re-panic
						}
					}
				}()
				fn(p)
			}()
		}
		p.dead = true
		delete(e.procs, p)
		p.yield <- struct{}{} // give control back to the engine
	}()
	e.Schedule(0, func() { p.activate(sigRun) })
	return p
}

// activate transfers control to the process goroutine and blocks until it
// parks or finishes. Must be called from engine (event) context.
func (p *Proc) activate(sig procSignal) {
	if p.dead {
		return
	}
	prev := p.eng.current
	p.eng.current = p
	p.resume <- sig
	<-p.yield
	p.eng.current = prev
}

// park suspends the process, returning control to the event loop. It
// resumes when some event calls activate. Returns the signal used to
// resume.
func (p *Proc) park() procSignal {
	p.parked = true
	p.yield <- struct{}{}
	sig := <-p.resume
	p.parked = false
	if sig == sigStop {
		panic(ErrStopped)
	}
	return sig
}

// unwind forces a parked process to panic with ErrStopped so that its
// deferred functions run and the goroutine exits. Engine use only.
func (p *Proc) unwind() {
	if p.dead || !p.parked {
		return
	}
	p.resume <- sigStop
	<-p.yield
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep suspends the process for virtual duration d. It returns true if
// the sleep completed, false if Interrupt woke it early.
func (p *Proc) Sleep(d Duration) bool {
	p.checkContext("Sleep")
	p.sleepEv = p.eng.Schedule(d, func() {
		p.sleepEv = nil
		p.activate(sigRun)
	})
	sig := p.park()
	if sig == sigInterrupt {
		if p.sleepEv != nil {
			p.eng.Cancel(p.sleepEv)
			p.sleepEv = nil
		}
		p.interrupted = false
		return false
	}
	return true
}

// Park suspends the process until another event calls Unpark (or the
// engine stops). Returns true on a normal Unpark, false if Interrupt was
// used.
func (p *Proc) Park() bool {
	p.checkContext("Park")
	sig := p.park()
	return sig == sigRun
}

// Unpark schedules the process to resume at the current virtual time.
// It may be called from event context or from another process. Calling
// Unpark on a process that is not parked is a no-op (the signal is not
// remembered); use higher-level queues for lossless signalling.
func (p *Proc) Unpark() {
	if p.dead || !p.parked {
		return
	}
	p.eng.Schedule(0, func() {
		if !p.dead && p.parked {
			p.activate(sigRun)
		}
	})
}

// Interrupt wakes a parked or sleeping process with an interrupt signal:
// Sleep/Park return false. No-op if the process is not parked.
func (p *Proc) Interrupt() {
	if p.dead || !p.parked {
		return
	}
	p.eng.Schedule(0, func() {
		if !p.dead && p.parked {
			p.activate(sigInterrupt)
		}
	})
}

// Dead reports whether the process has finished.
func (p *Proc) Dead() bool { return p.dead }

func (p *Proc) checkContext(op string) {
	if p.eng.current != p {
		panic(fmt.Sprintf("sim: %s called on proc %q from outside its own context", op, p.name))
	}
}

// WaitQueue is a FIFO of parked processes, the building block for
// condition-style blocking (socket buffers, channels, semaphores).
// The zero value is ready to use.
type WaitQueue struct {
	waiters []*Proc
}

// Wait parks the calling process until Signal/Broadcast wakes it.
// Returns false if the wait was interrupted.
func (q *WaitQueue) Wait(p *Proc) bool {
	q.waiters = append(q.waiters, p)
	ok := p.Park()
	if !ok {
		// Remove ourselves if still queued (interrupt before signal).
		for i, w := range q.waiters {
			if w == p {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
	}
	return ok
}

// Signal wakes the oldest waiter, if any.
func (q *WaitQueue) Signal() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if !w.dead {
			w.Unpark()
			return
		}
	}
}

// Broadcast wakes all current waiters.
func (q *WaitQueue) Broadcast() {
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		if !w.dead {
			w.Unpark()
		}
	}
}

// Len reports the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Semaphore is a counting semaphore for processes.
type Semaphore struct {
	n int
	q WaitQueue
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{n: n} }

// Acquire takes a permit, blocking the process until one is available.
// Returns false if interrupted.
func (s *Semaphore) Acquire(p *Proc) bool {
	for s.n == 0 {
		if !s.q.Wait(p) {
			return false
		}
	}
	s.n--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.n++
	s.q.Signal()
}
