package sim

import (
	"errors"
	"fmt"
)

// ErrStopped is the panic value used to unwind a parked process when the
// engine shuts down. Process bodies should not recover it; the spawn
// wrapper does.
var ErrStopped = errors.New("sim: engine stopped")

// Proc is a simulation process: a goroutine whose execution is interleaved
// with the event loop so that at most one simulation goroutine runs at any
// instant. Inside a Proc, code may call Sleep, Park and the blocking
// helpers of higher-level packages (sockets, queues) as if they were
// ordinary blocking calls.
type Proc struct {
	eng    *Engine
	name   string
	resume chan procSignal
	yield  chan struct{}
	parked bool
	dead   bool

	// wake event for Sleep, so Interrupt can cancel it.
	sleepEv *Event

	// interrupted is the sticky interrupt flag: set by Interrupt, it
	// makes every Park/Sleep return false — without blocking — until
	// the process acknowledges it with ClearInterrupt (or dies). The
	// stickiness is what lets an interrupt cross nested wait loops: a
	// park buried three calls deep returns false, and so does every
	// park above it as the stack unwinds, so no loop can accidentally
	// swallow a stop request by re-parking.
	interrupted bool
}

type procSignal int

const (
	sigRun procSignal = iota
	sigStop
	sigInterrupt
)

// Spawn starts fn as a new process immediately (at the current virtual
// time, as a scheduled event). The name is used in diagnostics only.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan procSignal),
		yield:  make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go func() {
		sig := <-p.resume // wait for first activation
		if sig != sigStop {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if err, ok := r.(error); !ok || !errors.Is(err, ErrStopped) {
							panic(r) // real bug: re-panic
						}
					}
				}()
				fn(p)
			}()
		}
		p.dead = true
		delete(e.procs, p)
		p.yield <- struct{}{} // give control back to the engine
	}()
	e.Schedule(0, func() { p.activate(sigRun) })
	return p
}

// activate transfers control to the process goroutine and blocks until it
// parks or finishes. Must be called from engine (event) context.
func (p *Proc) activate(sig procSignal) {
	if p.dead {
		return
	}
	prev := p.eng.current
	p.eng.current = p
	p.resume <- sig
	<-p.yield
	p.eng.current = prev
}

// park suspends the process, returning control to the event loop. It
// resumes when some event calls activate. Returns the signal used to
// resume.
func (p *Proc) park() procSignal {
	p.parked = true
	p.yield <- struct{}{}
	sig := <-p.resume
	p.parked = false
	if sig == sigStop {
		panic(ErrStopped)
	}
	return sig
}

// unwind forces a parked process to panic with ErrStopped so that its
// deferred functions run and the goroutine exits. Engine use only.
func (p *Proc) unwind() {
	if p.dead || !p.parked {
		return
	}
	p.resume <- sigStop
	<-p.yield
}

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Sleep suspends the process for virtual duration d. It returns true if
// the sleep completed, false if an interrupt is pending — in which case
// the sleep is skipped entirely (a pending interrupt means the process
// has been asked to wind down; sleeping on would just delay it).
func (p *Proc) Sleep(d Duration) bool {
	p.checkContext("Sleep")
	if p.interrupted {
		return false
	}
	p.sleepEv = p.eng.Schedule(d, func() {
		p.sleepEv = nil
		p.activate(sigRun)
	})
	p.park()
	if p.interrupted {
		if p.sleepEv != nil {
			p.eng.Cancel(p.sleepEv)
			p.sleepEv = nil
		}
		return false
	}
	return true
}

// Park suspends the process until another event calls Unpark (or the
// engine stops). Returns true on a normal Unpark, false if an interrupt
// is pending (in which case a park with the flag already set returns
// immediately). The interrupt stays pending — see Interrupt.
func (p *Proc) Park() bool {
	p.checkContext("Park")
	if p.interrupted {
		return false
	}
	p.park()
	return !p.interrupted
}

// Unpark schedules the process to resume at the current virtual time.
// It may be called from event context or from another process. Calling
// Unpark on a process that is not parked is a no-op (the signal is not
// remembered); use higher-level queues for lossless signalling.
func (p *Proc) Unpark() {
	if p.dead || !p.parked {
		return
	}
	p.eng.Schedule(0, func() {
		if !p.dead && p.parked {
			p.activate(sigRun)
		}
	})
}

// Interrupt asks the process to wind down: the sticky interrupted flag
// is set immediately, every subsequent Park/Sleep returns false without
// blocking, and a currently parked process is woken at the current
// virtual time. The flag persists until the process calls ClearInterrupt
// (for interrupts it originated itself, e.g. its own receive deadline)
// or exits — so an interrupt delivered while the process is parked deep
// inside a helper still reaches the outermost loop.
func (p *Proc) Interrupt() {
	if p.dead {
		return
	}
	p.interrupted = true
	if !p.parked {
		return // the flag is observed at the next Park/Sleep
	}
	p.eng.Schedule(0, func() {
		// Re-check the flag: if the process consumed the interrupt
		// (ClearInterrupt) after being woken by its real signal, this
		// stale wake-up must not interrupt an unrelated later park.
		if !p.dead && p.parked && p.interrupted {
			p.activate(sigInterrupt)
		}
	})
}

// Interrupted reports whether an interrupt is pending on the process.
// Long-running loop bodies use it as a cheap cancellation check between
// blocking calls.
func (p *Proc) Interrupted() bool { return p.interrupted }

// ClearInterrupt consumes a pending interrupt. Only the code that knows
// the interrupt's origin should clear it — typically a deadline helper
// that used Interrupt on its own process to bound a wait and must not
// let its private wake-up look like an external stop request.
func (p *Proc) ClearInterrupt() { p.interrupted = false }

// Dead reports whether the process has finished.
func (p *Proc) Dead() bool { return p.dead }

func (p *Proc) checkContext(op string) {
	if p.eng.current != p {
		panic(fmt.Sprintf("sim: %s called on proc %q from outside its own context", op, p.name))
	}
}

// WaitQueue is a FIFO of parked processes, the building block for
// condition-style blocking (socket buffers, channels, semaphores).
// The zero value is ready to use.
type WaitQueue struct {
	waiters []*Proc
}

// Wait parks the calling process until Signal/Broadcast wakes it.
// Returns false if the wait was interrupted.
func (q *WaitQueue) Wait(p *Proc) bool {
	q.waiters = append(q.waiters, p)
	ok := p.Park()
	if !ok {
		// Remove ourselves if still queued (interrupt before signal).
		for i, w := range q.waiters {
			if w == p {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				break
			}
		}
	}
	return ok
}

// Signal wakes the oldest waiter, if any.
func (q *WaitQueue) Signal() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if !w.dead {
			w.Unpark()
			return
		}
	}
}

// Broadcast wakes all current waiters.
func (q *WaitQueue) Broadcast() {
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		if !w.dead {
			w.Unpark()
		}
	}
}

// Len reports the number of parked waiters.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Semaphore is a counting semaphore for processes.
type Semaphore struct {
	n int
	q WaitQueue
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{n: n} }

// Acquire takes a permit, blocking the process until one is available.
// Returns false if interrupted.
func (s *Semaphore) Acquire(p *Proc) bool {
	for s.n == 0 {
		if !s.q.Wait(p) {
			return false
		}
	}
	s.n--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.n++
	s.q.Signal()
}
