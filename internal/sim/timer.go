package sim

// Timer is a restartable one-shot timer, the building block for protocol
// retransmission and keepalive logic. The zero value is invalid; create
// with NewTimer.
type Timer struct {
	eng *Engine
	fn  func()
	ev  *Event
}

// NewTimer returns a stopped timer that will run fn when it fires.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Reset (re)arms the timer to fire after d. Any previously pending firing
// is cancelled.
func (t *Timer) Reset(d Duration) {
	t.Stop()
	t.ev = t.eng.Schedule(d, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop cancels a pending firing, if any. It reports whether a firing was
// pending.
func (t *Timer) Stop() bool {
	if t.ev == nil {
		return false
	}
	t.eng.Cancel(t.ev)
	t.ev = nil
	return true
}

// Active reports whether the timer is armed.
func (t *Timer) Active() bool { return t.ev != nil }

// Ticker invokes fn every period until stopped. Create with NewTicker.
type Ticker struct {
	eng    *Engine
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker starts a ticker whose first tick is one period from now.
func NewTicker(e *Engine, period Duration, fn func()) *Ticker {
	t := &Ticker{eng: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.ev = t.eng.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.schedule()
		}
	})
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.eng.Cancel(t.ev)
		t.ev = nil
	}
}
