// Package sim implements the discrete-event simulation (DES) engine that
// every WAVNet substrate runs on.
//
// The engine maintains a virtual clock and an event queue ordered by
// (time, sequence). Events are plain callbacks; a coroutine layer (Proc)
// lets higher-level code — TCP sockets, MPI ranks, benchmark drivers —
// be written in a blocking style while the whole simulation remains
// single-threaded and bit-for-bit deterministic for a given seed.
//
// Only one goroutine ever executes simulation logic at a time: the engine
// hands control to a process and waits for it to park or finish before
// dispatching the next event. Determinism therefore depends only on the
// event ordering, which is total.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration re-exports time.Duration for convenience so callers need not
// import both packages.
type Duration = time.Duration

// Common duration constants re-exported for callers.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
	Minute      = time.Minute
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// Event is a scheduled callback. The zero value is invalid; events are
// created by Engine.Schedule and friends.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 when not queued
	cancelled bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. Create one with NewEngine; it is
// not safe for concurrent use from multiple OS threads (the coroutine
// layer serializes everything internally).
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
	running bool

	// current proc executing, if any (used by the coroutine layer).
	current *Proc
	// live procs, for shutdown.
	procs map[*Proc]struct{}

	// flushers run once after the last event of the current virtual
	// timestamp, before the clock advances (see AtTimeEnd).
	flushers []func()

	dispatched uint64
}

// NewEngine returns an engine with its virtual clock at zero and a
// deterministic random source derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		procs: make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (events or procs).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Dispatched reports how many events have been executed so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay d (clamped to zero) and returns a
// handle that can be cancelled.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At queues fn to run at absolute time t (clamped to now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

// Step executes the single next event. It reports false when the queue is
// empty or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		e.dispatched++
		ev.fn()
		if len(e.flushers) > 0 {
			e.runTimeEndFlushers()
		}
		return true
	}
	return false
}

// AtTimeEnd registers fn to run once after the last already-queued event
// of the current virtual timestamp has executed, before the clock
// advances. It is the hook the tunnel egress batcher uses to coalesce
// every frame emitted "during this instant" into one wire packet per
// destination. Flushers run in registration order (deterministic) and
// may schedule new events — including events at the current timestamp,
// which then run after the flush. The registration is one-shot.
func (e *Engine) AtTimeEnd(fn func()) {
	e.flushers = append(e.flushers, fn)
}

// runTimeEndFlushers runs the pending AtTimeEnd hooks if no runnable
// event remains at the current timestamp.
func (e *Engine) runTimeEndFlushers() {
	// Drop cancelled heads so a dead same-instant event cannot defer
	// the flush past the timestamp boundary.
	for len(e.queue) > 0 && e.queue[0].cancelled {
		heap.Pop(&e.queue)
	}
	if len(e.queue) > 0 && e.queue[0].at <= e.now {
		return // more events still due at this instant
	}
	for i := 0; i < len(e.flushers); i++ {
		fn := e.flushers[i]
		e.flushers[i] = nil
		fn()
	}
	e.flushers = e.flushers[:0]
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to exactly t. Events scheduled later remain queued.
func (e *Engine) RunUntil(t Time) {
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < t {
		e.now = t
	}
}

// RunFor executes events for virtual duration d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Stop halts the engine: no further events run, and all parked processes
// are unwound (their deferred functions execute). Safe to call from event
// or process context.
func (e *Engine) Stop() {
	if e.stopped {
		return
	}
	e.stopped = true
	// Unwind parked procs so their goroutines exit.
	for p := range e.procs {
		if p.parked && !p.dead {
			p.unwind()
		}
	}
}

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
