package mpi

import (
	"wavnet/internal/sim"
)

// HeatParams configures the heat-distribution stencil (Quinn's MPI
// formulation used by the paper: an m×m grid row-partitioned across the
// ranks, one halo exchange per Jacobi iteration).
type HeatParams struct {
	M          int // grid edge: the paper runs 64, 128, 256
	Iterations int // Jacobi iterations
	// ComputePerIter is the per-rank computation time for one iteration
	// (calibrated; see EXPERIMENTS.md).
	ComputePerIter sim.Duration
	// ReduceEvery inserts a convergence allreduce every k iterations
	// (0 disables).
	ReduceEvery int
}

// RunHeat executes the stencil and returns the elapsed virtual time.
func RunHeat(p *sim.Proc, w *World, hp HeatParams) (sim.Duration, error) {
	start := p.Now()
	rowBytes := 8 * hp.M // one row of float64 halo per neighbor
	err := w.Run(p, func(rp *sim.Proc, r *Rank) error {
		n := w.Size()
		for it := 0; it < hp.Iterations; it++ {
			if hp.ComputePerIter > 0 {
				rp.Sleep(hp.ComputePerIter)
			}
			// Halo exchange with row-partition neighbors. Even ranks
			// send first; odd ranks post the matching receives by
			// virtue of TCP buffering (SendRecv is symmetric here).
			if r.id > 0 {
				if err := r.SendRecv(rp, r.id-1, 100+it%2, rowBytes); err != nil {
					return err
				}
			}
			if r.id < n-1 {
				if err := r.SendRecv(rp, r.id+1, 100+it%2, rowBytes); err != nil {
					return err
				}
			}
			if hp.ReduceEvery > 0 && (it+1)%hp.ReduceEvery == 0 {
				if err := r.Allreduce(rp, 8); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return p.Now().Sub(start), err
}

// NASClass selects a NAS problem class.
type NASClass string

// Supported classes.
const (
	ClassA NASClass = "A"
	ClassB NASClass = "B"
)

// EPParams configures the embarrassingly-parallel kernel: pure
// computation with a tiny final reduction.
type EPParams struct {
	Class NASClass
	// ComputeRate is pair-generation throughput per rank (pairs/second);
	// the default (25e6) makes serial class A ≈ 10.7 s of virtual time.
	ComputeRate float64
}

// epPairs returns the sample count for the class (NPB 3).
func epPairs(c NASClass) float64 {
	switch c {
	case ClassB:
		return 1 << 30
	default:
		return 1 << 28
	}
}

// RunEP executes the EP kernel and returns elapsed virtual time.
func RunEP(p *sim.Proc, w *World, ep EPParams) (sim.Duration, error) {
	if ep.ComputeRate <= 0 {
		ep.ComputeRate = 25e6
	}
	start := p.Now()
	err := w.Run(p, func(rp *sim.Proc, r *Rank) error {
		pairs := epPairs(ep.Class) / float64(w.Size())
		rp.Sleep(sim.Duration(pairs / ep.ComputeRate * 1e9))
		// Ten scalar sums reduced at the end (q[0..9] in NPB).
		return r.Allreduce(rp, 80)
	})
	return p.Now().Sub(start), err
}

// FTParams configures the 3-D FFT kernel: compute plus a full alltoall
// transpose per iteration — the communication-bound case of Figure 14.
type FTParams struct {
	Class NASClass
	// ComputeRate is FFT throughput per rank in point-operations/second
	// (default 60e6).
	ComputeRate float64
}

// ftShape returns grid points and iteration count (NPB 3).
func ftShape(c NASClass) (points float64, iters int) {
	switch c {
	case ClassB:
		return 512 * 256 * 256, 20
	default:
		return 256 * 256 * 128, 6
	}
}

// RunFT executes the FT kernel and returns elapsed virtual time.
func RunFT(p *sim.Proc, w *World, ft FTParams) (sim.Duration, error) {
	if ft.ComputeRate <= 0 {
		ft.ComputeRate = 60e6
	}
	points, iters := ftShape(ft.Class)
	n := float64(w.Size())
	// 16 bytes per complex point, partitioned across ranks; the
	// transpose moves each rank's slab to every other rank.
	perPair := int(points * 16 / n / n)
	computePer := sim.Duration(points * 5 / n / ft.ComputeRate * 1e9) // ~5 ops/point/iter
	start := p.Now()
	err := w.Run(p, func(rp *sim.Proc, r *Rank) error {
		for it := 0; it < iters; it++ {
			rp.Sleep(computePer)
			if err := r.Alltoall(rp, perPair); err != nil {
				return err
			}
		}
		return r.Allreduce(rp, 16)
	})
	return p.Now().Sub(start), err
}
