package mpi

import (
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// bridgeWorld puts n stacks on one fast bridge (a LAN-like fabric).
func bridgeWorld(seed int64, n int, lat sim.Duration) (*sim.Engine, []*ipstack.Stack) {
	eng := sim.NewEngine(seed)
	br := ether.NewBridge(eng, "br", lat)
	var stacks []*ipstack.Stack
	for i := 0; i < n; i++ {
		st := ipstack.New(eng, "r", br.AddPort("p"), ether.SeqMAC(uint32(i+1)),
			netsim.MakeIP(10, 0, 0, byte(i+1)), ipstack.Config{})
		stacks = append(stacks, st)
	}
	return eng, stacks
}

func connectWorld(t *testing.T, eng *sim.Engine, stacks []*ipstack.Stack) *World {
	t.Helper()
	w := NewWorld(eng, stacks)
	var err error
	done := false
	eng.Spawn("connect", func(p *sim.Proc) {
		err = w.Connect(p)
		done = true
	})
	eng.RunFor(30 * time.Second)
	if !done || err != nil {
		t.Fatalf("connect: done=%v err=%v", done, err)
	}
	return w
}

func TestSendRecv(t *testing.T) {
	eng, stacks := bridgeWorld(1, 2, 10*time.Microsecond)
	w := connectWorld(t, eng, stacks)
	var got int
	var err error
	eng.Spawn("driver", func(p *sim.Proc) {
		err = w.Run(p, func(rp *sim.Proc, r *Rank) error {
			if r.ID() == 0 {
				return r.Send(rp, 1, 7, 12345)
			}
			var e error
			got, e = r.Recv(rp, 0, 7)
			return e
		})
	})
	eng.RunFor(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12345 {
		t.Fatalf("received size %d", got)
	}
}

func TestTagDemux(t *testing.T) {
	eng, stacks := bridgeWorld(2, 2, 10*time.Microsecond)
	w := connectWorld(t, eng, stacks)
	var a, b int
	eng.Spawn("driver", func(p *sim.Proc) {
		w.Run(p, func(rp *sim.Proc, r *Rank) error {
			if r.ID() == 0 {
				r.Send(rp, 1, 1, 111)
				r.Send(rp, 1, 2, 222)
				return nil
			}
			// Receive out of order: tag 2 first.
			var e error
			b, e = r.Recv(rp, 0, 2)
			if e != nil {
				return e
			}
			a, e = r.Recv(rp, 0, 1)
			return e
		})
	})
	eng.RunFor(30 * time.Second)
	if a != 111 || b != 222 {
		t.Fatalf("tag demux got %d/%d", a, b)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, stacks := bridgeWorld(3, 4, 10*time.Microsecond)
	w := connectWorld(t, eng, stacks)
	var minAfter, maxBefore sim.Time
	minAfter = 1 << 62
	eng.Spawn("driver", func(p *sim.Proc) {
		w.Run(p, func(rp *sim.Proc, r *Rank) error {
			// Stagger arrival; nobody may pass before the last arrives.
			rp.Sleep(time.Duration(r.ID()) * 100 * time.Millisecond)
			if rp.Now() > maxBefore {
				maxBefore = rp.Now()
			}
			if err := r.Barrier(rp); err != nil {
				return err
			}
			if rp.Now() < minAfter {
				minAfter = rp.Now()
			}
			return nil
		})
	})
	eng.RunFor(60 * time.Second)
	if minAfter < maxBefore {
		t.Fatalf("a rank passed the barrier (%v) before the last arrived (%v)", minAfter, maxBefore)
	}
}

func TestAlltoallVolume(t *testing.T) {
	eng, stacks := bridgeWorld(4, 4, 10*time.Microsecond)
	w := connectWorld(t, eng, stacks)
	eng.Spawn("driver", func(p *sim.Proc) {
		w.Run(p, func(rp *sim.Proc, r *Rank) error {
			return r.Alltoall(rp, 10000)
		})
	})
	eng.RunFor(60 * time.Second)
	for i := 0; i < 4; i++ {
		r := w.Rank(i)
		if r.BytesRecv != 30000 {
			t.Fatalf("rank %d received %d bytes, want 30000", i, r.BytesRecv)
		}
	}
}

func TestHeatScalesWithLatency(t *testing.T) {
	run := func(lat sim.Duration) sim.Duration {
		eng, stacks := bridgeWorld(5, 4, lat)
		w := connectWorld(t, eng, stacks)
		var elapsed sim.Duration
		eng.Spawn("driver", func(p *sim.Proc) {
			elapsed, _ = RunHeat(p, w, HeatParams{M: 64, Iterations: 200, ComputePerIter: time.Millisecond})
		})
		eng.RunFor(30 * time.Minute)
		return elapsed
	}
	fast := run(10 * time.Microsecond)
	slow := run(10 * time.Millisecond) // per-bridge-hop latency ≈ WAN
	if slow < 3*fast {
		t.Fatalf("heat on slow fabric %v not much slower than fast %v", slow, fast)
	}
}

func TestEPComputeBound(t *testing.T) {
	// EP on 4 ranks: communication is one tiny allreduce, so runtime on
	// a slow fabric is barely worse than on a fast one.
	run := func(lat sim.Duration) sim.Duration {
		eng, stacks := bridgeWorld(6, 4, lat)
		w := connectWorld(t, eng, stacks)
		var elapsed sim.Duration
		eng.Spawn("driver", func(p *sim.Proc) {
			elapsed, _ = RunEP(p, w, EPParams{Class: ClassA})
		})
		eng.RunFor(2 * time.Hour)
		return elapsed
	}
	fast := run(10 * time.Microsecond)
	slow := run(20 * time.Millisecond)
	if float64(slow) > 1.5*float64(fast) {
		t.Fatalf("EP should be compute-bound: fast=%v slow=%v", fast, slow)
	}
}

func TestFTCommunicationBound(t *testing.T) {
	// FT's alltoall makes it latency/bandwidth sensitive: the slow
	// fabric must hurt much more than EP.
	run := func(lat sim.Duration) sim.Duration {
		eng, stacks := bridgeWorld(7, 4, lat)
		w := connectWorld(t, eng, stacks)
		var elapsed sim.Duration
		eng.Spawn("driver", func(p *sim.Proc) {
			elapsed, _ = RunFT(p, w, FTParams{Class: ClassA})
		})
		eng.RunFor(6 * time.Hour)
		return elapsed
	}
	fast := run(10 * time.Microsecond)
	slow := run(20 * time.Millisecond)
	if float64(slow) < 1.5*float64(fast) {
		t.Fatalf("FT should feel the network: fast=%v slow=%v", fast, slow)
	}
}
