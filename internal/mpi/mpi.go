// Package mpi is a small message-passing runtime over the virtual TCP
// stack, sufficient to reproduce the paper's parallel workloads: the
// MPICH heat-distribution program (Figure 11) and the NAS EP and FT
// kernels (Figure 14). Message payloads are synthetic (only sizes
// matter), but every byte crosses the virtual network for real, so
// communication time is measured, not modeled.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/sim"
)

// BasePort is the first TCP port used by rank listeners.
const BasePort = 9300

// World is a set of communicating ranks.
type World struct {
	eng   *sim.Engine
	ranks []*Rank
}

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int
	stack *ipstack.Stack
	conns map[int]*ipstack.Conn
	inbox map[msgKey][]int // lengths of queued messages
	wq    sim.WaitQueue

	// Stats.
	BytesSent, BytesRecv uint64
	MsgsSent, MsgsRecv   uint64
}

type msgKey struct {
	from int
	tag  int
}

// NewWorld creates a world with one rank per stack, in rank order.
func NewWorld(eng *sim.Engine, stacks []*ipstack.Stack) *World {
	w := &World{eng: eng}
	for i, st := range stacks {
		w.ranks = append(w.ranks, &Rank{
			world: w,
			id:    i,
			stack: st,
			conns: make(map[int]*ipstack.Conn),
			inbox: make(map[msgKey][]int),
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Connect builds the full TCP mesh. It must be called from a process and
// blocks until every pairwise connection is up.
func (w *World) Connect(p *sim.Proc) error {
	n := len(w.ranks)
	if n < 2 {
		return nil
	}
	var firstErr error
	remaining := 0
	// Every rank listens; lower ranks dial higher ranks.
	for _, r := range w.ranks {
		r := r
		lis, err := r.stack.Listen(uint16(BasePort + r.id))
		if err != nil {
			return err
		}
		expect := r.id // ranks below us dial in
		remaining += expect
		w.eng.Spawn(fmt.Sprintf("mpi-accept-%d", r.id), func(ap *sim.Proc) {
			for i := 0; i < expect; i++ {
				conn, err := lis.Accept(ap)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				// Peer announces its rank id.
				hdr := make([]byte, 4)
				if _, err := conn.ReadFull(ap, hdr); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				peer := int(binary.BigEndian.Uint32(hdr))
				r.conns[peer] = conn
				r.startReceiver(peer, conn)
				remaining--
				p.Unpark()
			}
			lis.Close()
		})
	}
	dials := 0
	for _, r := range w.ranks {
		r := r
		for peer := r.id + 1; peer < n; peer++ {
			peer := peer
			dials++
			w.eng.Spawn(fmt.Sprintf("mpi-dial-%d-%d", r.id, peer), func(dp *sim.Proc) {
				defer func() { dials--; p.Unpark() }()
				dst := netsim.Addr{IP: w.ranks[peer].stack.IP(), Port: uint16(BasePort + peer)}
				conn, err := r.stack.Dial(dp, dst)
				if err != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("mpi: rank %d -> %d: %w", r.id, peer, err)
					}
					return
				}
				hdr := make([]byte, 4)
				binary.BigEndian.PutUint32(hdr, uint32(r.id))
				if _, err := conn.Write(dp, hdr); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				r.conns[peer] = conn
				r.startReceiver(peer, conn)
			})
		}
	}
	for firstErr == nil && (remaining > 0 || dials > 0) {
		if !p.Park() {
			return errors.New("mpi: connect interrupted")
		}
	}
	return firstErr
}

// startReceiver demultiplexes framed messages from one peer into the
// inbox.
func (r *Rank) startReceiver(peer int, conn *ipstack.Conn) {
	r.world.eng.Spawn(fmt.Sprintf("mpi-recv-%d<-%d", r.id, peer), func(p *sim.Proc) {
		hdr := make([]byte, 8)
		buf := make([]byte, 64<<10)
		for {
			if _, err := conn.ReadFull(p, hdr); err != nil {
				return
			}
			tag := int(binary.BigEndian.Uint32(hdr[0:]))
			size := int(binary.BigEndian.Uint32(hdr[4:]))
			left := size
			for left > 0 {
				chunk := buf
				if left < len(chunk) {
					chunk = chunk[:left]
				}
				n, err := conn.ReadFull(p, chunk)
				left -= n
				if err != nil {
					return
				}
			}
			r.BytesRecv += uint64(size)
			r.MsgsRecv++
			key := msgKey{from: peer, tag: tag}
			r.inbox[key] = append(r.inbox[key], size)
			r.wq.Broadcast()
		}
	})
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Stack returns the rank's protocol stack.
func (r *Rank) Stack() *ipstack.Stack { return r.stack }

// ErrNoPeer is returned for messages to unknown ranks.
var ErrNoPeer = errors.New("mpi: no connection to peer")

// Send transmits size synthetic bytes to rank `to` under tag. It blocks
// until the bytes are handed to TCP (buffered), like MPI_Send with an
// eager protocol.
func (r *Rank) Send(p *sim.Proc, to, tag, size int) error {
	conn, ok := r.conns[to]
	if !ok {
		return ErrNoPeer
	}
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr[0:], uint32(tag))
	binary.BigEndian.PutUint32(hdr[4:], uint32(size))
	if _, err := conn.Write(p, hdr); err != nil {
		return err
	}
	chunk := make([]byte, 32<<10)
	for left := size; left > 0; {
		n := left
		if n > len(chunk) {
			n = len(chunk)
		}
		if _, err := conn.Write(p, chunk[:n]); err != nil {
			return err
		}
		left -= n
	}
	r.BytesSent += uint64(size)
	r.MsgsSent++
	return nil
}

// Recv blocks until a message from rank `from` with tag arrives and
// returns its size.
func (r *Rank) Recv(p *sim.Proc, from, tag int) (int, error) {
	key := msgKey{from: from, tag: tag}
	for len(r.inbox[key]) == 0 {
		if !r.wq.Wait(p) {
			return 0, errors.New("mpi: recv interrupted")
		}
	}
	size := r.inbox[key][0]
	r.inbox[key] = r.inbox[key][1:]
	return size, nil
}

// SendRecv exchanges messages with a partner (deadlock-free pairwise
// exchange: both sides buffer through TCP).
func (r *Rank) SendRecv(p *sim.Proc, partner, tag, size int) error {
	if err := r.Send(p, partner, tag, size); err != nil {
		return err
	}
	_, err := r.Recv(p, partner, tag)
	return err
}

// Collective tags (high bits to avoid app tags).
const (
	tagBarrier = 1 << 20
	tagReduce  = 1 << 21
	tagBcast   = 1 << 22
	tagAll2All = 1 << 23
)

// Barrier synchronizes all ranks (gather to rank 0, then release).
func (r *Rank) Barrier(p *sim.Proc) error {
	n := r.world.Size()
	if n == 1 {
		return nil
	}
	if r.id == 0 {
		for i := 1; i < n; i++ {
			if _, err := r.Recv(p, i, tagBarrier); err != nil {
				return err
			}
		}
		for i := 1; i < n; i++ {
			if err := r.Send(p, i, tagBarrier, 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.Send(p, 0, tagBarrier, 1); err != nil {
		return err
	}
	_, err := r.Recv(p, 0, tagBarrier)
	return err
}

// Allreduce models an allreduce of size bytes per rank: reduce to rank 0
// then broadcast.
func (r *Rank) Allreduce(p *sim.Proc, size int) error {
	n := r.world.Size()
	if n == 1 {
		return nil
	}
	if r.id == 0 {
		for i := 1; i < n; i++ {
			if _, err := r.Recv(p, i, tagReduce); err != nil {
				return err
			}
		}
		for i := 1; i < n; i++ {
			if err := r.Send(p, i, tagBcast, size); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.Send(p, 0, tagReduce, size); err != nil {
		return err
	}
	_, err := r.Recv(p, 0, tagBcast)
	return err
}

// Alltoall exchanges sizePerPair bytes between every rank pair — the
// transpose step dominating NAS FT.
func (r *Rank) Alltoall(p *sim.Proc, sizePerPair int) error {
	n := r.world.Size()
	for i := 0; i < n; i++ {
		if i == r.id {
			continue
		}
		if err := r.Send(p, i, tagAll2All, sizePerPair); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		if i == r.id {
			continue
		}
		if _, err := r.Recv(p, i, tagAll2All); err != nil {
			return err
		}
	}
	return nil
}

// Run executes fn concurrently on every rank and blocks the caller until
// all ranks finish; the first error is returned.
func (w *World) Run(p *sim.Proc, fn func(rp *sim.Proc, r *Rank) error) error {
	var firstErr error
	live := len(w.ranks)
	for _, r := range w.ranks {
		r := r
		w.eng.Spawn(fmt.Sprintf("mpi-rank-%d", r.id), func(rp *sim.Proc) {
			if err := fn(rp, r); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("mpi: rank %d: %w", r.id, err)
			}
			live--
			p.Unpark()
		})
	}
	for live > 0 {
		if !p.Park() {
			return errors.New("mpi: wait interrupted")
		}
	}
	return firstErr
}
