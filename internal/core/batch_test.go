package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/nat"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// Egress-batching behaviour tests: same-instant frames to one
// destination coalesce into one wire packet, quota drops stay
// per-frame, order survives the batch codec, and relayed tunnels get
// their envelope in place.

// batchPair builds a two-host world with an established a→b tunnel and
// a collector port on b's default bridge recording frame payloads in
// arrival order.
func batchPair(t *testing.T, seed int64, types []nat.Type) (*world, *[]string) {
	t.Helper()
	w := buildWorld(t, seed, types,
		[]sim.Duration{10 * time.Millisecond, 15 * time.Millisecond})
	w.joinAll(t)
	var connErr error
	w.eng.Spawn("connect", func(p *sim.Proc) {
		_, connErr = w.hosts[0].ConnectTo(p, hostName(1))
	})
	w.eng.RunFor(30 * time.Second)
	if connErr != nil {
		t.Fatalf("connect: %v", connErr)
	}
	got := &[]string{}
	col := w.hosts[1].Bridge().AddPort("col")
	col.SetRecv(func(f *ether.Frame) { *got = append(*got, string(f.Payload)) })
	return w, got
}

// injectBroadcasts floods n same-instant frames ("f-0".."f-n-1")
// through host 0's default segment.
func injectBroadcasts(w *world, n int) {
	w.eng.Schedule(0, func() {
		h := w.hosts[0]
		seg := h.segments[0]
		for i := 0; i < n; i++ {
			h.switchFrame(seg, &ether.Frame{
				Dst:     ether.Broadcast,
				Src:     ether.SeqMAC(99),
				Type:    ether.TypeIPv4,
				Payload: []byte(fmt.Sprintf("f-%d", i)),
			})
		}
	})
	w.eng.RunFor(5 * time.Second)
}

func wantOrder(t *testing.T, got []string, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("received %d frames (%v), want %d", len(got), got, n)
	}
	for i, s := range got {
		if s != fmt.Sprintf("f-%d", i) {
			t.Fatalf("frame order broken at %d: %v", i, got)
		}
	}
}

func TestBatchCoalescesSameInstantFrames(t *testing.T) {
	w, got := batchPair(t, 21, []nat.Type{nat.FullCone, nat.FullCone})
	h := w.hosts[0]
	flushes0 := h.BatchFlushes
	injectBroadcasts(w, 5)
	wantOrder(t, *got, 5)
	// One destination, one instant, well under both caps: exactly one
	// aggregated packet.
	if d := h.BatchFlushes - flushes0; d != 1 {
		t.Fatalf("BatchFlushes = %d, want 1", d)
	}
	tun, _ := h.Tunnel(hostName(1))
	if tun.BatchesOut != 1 {
		t.Fatalf("BatchesOut = %d, want 1", tun.BatchesOut)
	}
	rtun, _ := w.hosts[1].Tunnel(hostName(0))
	if rtun.BatchesIn != 1 || rtun.FramesIn < 5 {
		t.Fatalf("receiver BatchesIn = %d FramesIn = %d, want 1 batch / ≥5 frames",
			rtun.BatchesIn, rtun.FramesIn)
	}
	if h.BatchSizes().Max() != 5 {
		t.Fatalf("batch size max = %.0f, want 5", h.BatchSizes().Max())
	}
}

func TestBatchFrameCapFlushesEarly(t *testing.T) {
	w, got := batchPair(t, 22, []nat.Type{nat.FullCone, nat.FullCone})
	h := w.hosts[0]
	n := h.cfg.BatchMaxFrames + 8
	injectBroadcasts(w, n)
	wantOrder(t, *got, n)
	if h.BatchCapFlushes == 0 {
		t.Fatal("overflowing BatchMaxFrames never cap-flushed")
	}
	if h.BatchFlushes < 2 {
		t.Fatalf("BatchFlushes = %d, want ≥2 (cap flush + final flush)", h.BatchFlushes)
	}
}

func TestBatchByteCapKeepsWireUnderBudget(t *testing.T) {
	w, got := batchPair(t, 23, []nat.Type{nat.FullCone, nat.FullCone})
	h := w.hosts[0]
	// Three ~700-byte frames: two fit the 1500-byte budget, the third
	// must open a second packet.
	w.eng.Schedule(0, func() {
		seg := h.segments[0]
		for i := 0; i < 3; i++ {
			pay := make([]byte, 700)
			copy(pay, fmt.Sprintf("f-%d", i))
			h.switchFrame(seg, &ether.Frame{
				Dst: ether.Broadcast, Src: ether.SeqMAC(99),
				Type: ether.TypeIPv4, Payload: pay,
			})
		}
	})
	w.eng.RunFor(5 * time.Second)
	if len(*got) != 3 {
		t.Fatalf("received %d frames, want 3", len(*got))
	}
	for i, s := range *got {
		if want := fmt.Sprintf("f-%d", i); s[:len(want)] != want {
			t.Fatalf("frame order broken at %d", i)
		}
	}
	if h.BatchCapFlushes != 1 || h.BatchFlushes != 2 {
		t.Fatalf("flushes = %d (capped %d), want 2 with 1 capped",
			h.BatchFlushes, h.BatchCapFlushes)
	}
}

func TestBatchQuotaDropsPerFrame(t *testing.T) {
	w, got := batchPair(t, 24, []nat.Type{nat.FullCone, nat.FullCone})
	h := w.hosts[0]
	// Bucket depth of exactly two frames and a negligible refill rate:
	// of five same-instant frames the first two are admitted, the rest
	// drop at enqueue — the batch carries only admitted frames.
	frame := &ether.Frame{Dst: ether.Broadcast, Src: ether.SeqMAC(99),
		Type: ether.TypeIPv4, Payload: []byte("f-0")}
	wireLen := VNIEncapLen(0) + frame.WireLen()
	h.SetVNIQuota(0, QuotaConfig{Tenant: "t", RateBps: 1, BurstBytes: 2 * wireLen})
	injectBroadcasts(w, 5)
	wantOrder(t, *got, 2)
	if h.QuotaDrops != 3 {
		t.Fatalf("QuotaDrops = %d, want 3", h.QuotaDrops)
	}
	if h.BatchedFrames != 2 || h.BatchFlushes != 1 {
		t.Fatalf("batched %d frames in %d flushes, want 2 in 1",
			h.BatchedFrames, h.BatchFlushes)
	}
}

func TestBatchAcrossRelayedTunnel(t *testing.T) {
	// Symmetric-symmetric pairs fall back to a brokered relay; the
	// multi-frame batch rides one relay envelope written into the
	// buffer's headroom in place.
	w, got := batchPair(t, 25, []nat.Type{nat.Symmetric, nat.Symmetric})
	tun, _ := w.hosts[0].Tunnel(hostName(1))
	if !tun.Relayed {
		t.Fatal("tunnel not relayed; test fixture broken")
	}
	injectBroadcasts(w, 5)
	wantOrder(t, *got, 5)
	if tun.BatchesOut != 1 {
		t.Fatalf("BatchesOut = %d, want 1 (one envelope for the whole batch)", tun.BatchesOut)
	}
	rtun, _ := w.hosts[1].Tunnel(hostName(0))
	if rtun.BatchesIn != 1 {
		t.Fatalf("receiver BatchesIn = %d, want 1", rtun.BatchesIn)
	}
}

func TestBatchCodecSteadyStateAllocs(t *testing.T) {
	// The enqueue/flush cycle reuses the per-frame codec; with the
	// batch buffer provided (as the live path's reused capacity is),
	// append plus the receive walk is allocation-free.
	f := allocTestFrame()
	const vni = uint32(42)
	const headroom = rendezvous.RelayHeaderLen
	buf := make([]byte, headroom+batchHeaderLen, headroom+batchHeaderLen+1500)
	buf[headroom] = paFrameBatch
	var got ether.Frame
	allocs := testing.AllocsPerRun(100, func() {
		b := buf[:headroom+batchHeaderLen]
		for i := 0; i < 4; i++ {
			b = appendBatchFrame(b, vni, f)
		}
		payload := b[headroom:]
		off := batchHeaderLen
		frames := 0
		for off+batchLenBytes <= len(payload) {
			n := int(payload[off])<<8 | int(payload[off+1])
			off += batchLenBytes
			gotVNI, err := UnmarshalVNIFrameInto(&got, payload[off:off+n])
			if err != nil || gotVNI != vni {
				t.Fatalf("entry decode: vni=%d err=%v", gotVNI, err)
			}
			off += n
			frames++
		}
		if frames != 4 {
			t.Fatalf("walked %d entries, want 4", frames)
		}
	})
	if allocs != 0 {
		t.Errorf("batch codec round trip: %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchRaceEncodeVsLearning proves the batched encode path keeps
// the COW-table contract: batch encoding plus forwarding lookups never
// contend with concurrent learning (wired into the CI race job by
// name).
func TestBatchRaceEncodeVsLearning(t *testing.T) {
	eng := sim.NewEngine(1)
	table := ether.NewVNITable[int](eng, 0)
	const vnis = 4
	const macs = 64
	for v := 0; v < vnis; v++ {
		for m := 0; m < macs; m++ {
			table.Learn(uint32(v), ether.SeqMAC(uint32(m)), m)
		}
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	// Batch encoders: look up the destination, then append the frame to
	// a private egress batch — the switchFrame fast path.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			f := &ether.Frame{Src: ether.SeqMAC(1), Type: ether.TypeIPv4,
				Payload: make([]byte, 200)}
			buf := make([]byte, rendezvous.RelayHeaderLen+batchHeaderLen, 2048)
			b := buf
			for i := 0; i < 20000; i++ {
				f.Dst = ether.SeqMAC(uint32((i + g) % macs))
				if _, ok := table.Lookup(uint32(i%vnis), f.Dst); !ok {
					continue
				}
				b = appendBatchFrame(b, uint32(i%vnis), f)
				if len(b) > 1500 {
					b = b[:len(buf)] // "flush": reset the private batch
				}
			}
		}(g)
	}
	// Learners: refresh known MACs and invent new ones (the republish
	// slow path).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 10000; i++ {
				table.Learn(uint32(i%vnis), ether.SeqMAC(uint32(i%macs)), g)
				if i%100 == 0 {
					table.Learn(uint32(i%vnis), ether.SeqMAC(uint32(macs+i)), g)
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
}
