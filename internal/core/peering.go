package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"wavnet/internal/ether"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
)

// VPC peering: a policy-checked inter-VNI gateway on the WAV-Switch
// path. A frame arriving tagged with a VNI this host has no segment for
// is normally another tenant's traffic and dies at the isolation check;
// when a peering rule links that VNI to a local segment AND the frame's
// destination address (IPv4 header or ARP target) falls inside the
// rule's allowed prefixes, the gateway re-injects the frame into the
// peered segment instead. Because the check runs on the receiver, two
// networks exchange traffic exactly when BOTH ends carry the policy —
// a host that was never told about the peering still drops everything.
//
// VNI announcements ride the same tunnels: each host tells its peers
// which segments it carries (on tunnel establishment, on every segment
// change, and refreshed with every CONNECT_PULSE), which lets the
// sender suppress tagged floods toward tunnels that could only drop
// them (the ROADMAP's "smarter flooding").

// AllowPeering installs the directed gateway rule permitting frames
// tagged fromVNI to be re-injected into the local segment of intoVNI
// when their destination falls inside one of the prefixes (empty =
// every destination).
func (h *Host) AllowPeering(fromVNI, intoVNI uint32, prefixes []ether.Prefix) {
	h.peering.Allow(fromVNI, intoVNI, prefixes)
}

// RevokePeering removes the directed gateway rule.
func (h *Host) RevokePeering(fromVNI, intoVNI uint32) {
	h.peering.Revoke(fromVNI, intoVNI)
}

// PeeringRule reports the installed rule for (fromVNI, intoVNI).
func (h *Host) PeeringRule(fromVNI, intoVNI uint32) ([]ether.Prefix, bool) {
	return h.peering.Rule(fromVNI, intoVNI)
}

// DropPeeringsOf removes every gateway rule touching vni in either
// direction (membership teardown).
func (h *Host) DropPeeringsOf(vni uint32) { h.peering.DropVNI(vni) }

// SetFloodAll disables (true) or re-enables (false) VNI-aware flood
// suppression. With suppression off the host floods tagged frames to
// every established tunnel, as the data plane did before announcements
// existed; foreign receivers then drop them at the isolation check.
func (h *Host) SetFloodAll(v bool) { h.floodAll = v }

// gatewayInject is the receive-side inter-VNI gateway: called for a
// frame tagged with a VNI this host has no segment for. It returns true
// when the frame was consumed by peering (re-injected or counted as a
// policy drop); false sends the caller to the plain isolation drop.
func (h *Host) gatewayInject(t *Tunnel, vni uint32, f *ether.Frame) bool {
	routes := h.peering.Routes(vni)
	if len(routes) == 0 {
		return false
	}
	dst, hasDst := frameDstIP(f)
	consumed := false
	for _, into := range routes {
		seg, ok := h.segments[into]
		if !ok {
			continue
		}
		consumed = true
		if !hasDst || !h.peering.Allows(vni, into, dst) {
			h.PeerPolicyDrops++
			continue
		}
		// Teach both tables where the sender lives: under its own VNI
		// (more gateway traffic from it) and under the local segment's
		// (so replies unicast straight back over this tunnel).
		h.wswitch.Learn(vni, f.Src, t)
		h.wswitch.Learn(into, f.Src, t)
		h.PeeredForwards++
		inject := func() { seg.tap.Send(f) }
		if h.cfg.PacketCost > 0 {
			h.eng.Schedule(h.cfg.PacketCost, inject)
		} else {
			inject()
		}
	}
	return consumed
}

// frameDstIP extracts the destination the peering policy is checked
// against: the IPv4 header's destination address, or an ARP packet's
// target address (so address resolution crosses the gateway under the
// same policy as the traffic it enables).
func frameDstIP(f *ether.Frame) (netsim.IP, bool) {
	switch f.Type {
	case ether.TypeIPv4:
		if len(f.Payload) < 20 {
			return 0, false
		}
		return netsim.IP(binary.BigEndian.Uint32(f.Payload[16:20])), true
	case ether.TypeARP:
		a, err := ether.UnmarshalARP(f.Payload)
		if err != nil {
			return 0, false
		}
		return a.TargetIP, true
	default:
		return 0, false
	}
}

// floodUseful reports whether sending a frame tagged vni over t can
// possibly be delivered: the far end carries the VNI, carries a VNI
// peered with it (its gateway may re-inject), or has not announced its
// segment set yet (flood conservatively).
func (h *Host) floodUseful(t *Tunnel, vni uint32) bool {
	if vni == 0 || h.floodAll || !t.vniKnown {
		return true
	}
	if t.remoteVNIs[vni] {
		return true
	}
	for _, peer := range h.peering.PeersOf(vni) {
		if t.remoteVNIs[peer] {
			return true
		}
	}
	return false
}

// ---- VNI membership announcements ----

// vniSetPacket encodes [paVNISet][n:2][vni:4]*n over the host's current
// segment set.
func (h *Host) vniSetPacket() []byte {
	vnis := h.VNIs()
	b := make([]byte, 3+4*len(vnis))
	b[0] = paVNISet
	binary.BigEndian.PutUint16(b[1:], uint16(len(vnis)))
	for i, vni := range vnis {
		binary.BigEndian.PutUint32(b[3+4*i:], vni)
	}
	return b
}

// vniRefreshPulses is how many keepalive pulses may pass before a
// tunnel re-sends an unchanged VNI announcement (loss recovery without
// doubling every keepalive).
const vniRefreshPulses = 12

// announceVNIs pushes the current segment set to every established
// tunnel (called whenever a segment is added or dropped).
func (h *Host) announceVNIs() {
	h.vniGen++
	pkt := h.vniSetPacket()
	for _, t := range h.tunnels {
		if t.established {
			h.tunnelSend(t, pkt)
			t.announcedGen = h.vniGen
			t.sinceAnnounce = 0
		}
	}
}

// maybeAnnounceVNIs re-announces on one tunnel only when the segment
// set changed since the last announcement there, or as a slow periodic
// refresh; rides the keepalive tick.
func (h *Host) maybeAnnounceVNIs(t *Tunnel) {
	t.sinceAnnounce++
	if t.announcedGen == h.vniGen && t.sinceAnnounce < vniRefreshPulses {
		return
	}
	h.tunnelSend(t, h.vniSetPacket())
	t.announcedGen = h.vniGen
	t.sinceAnnounce = 0
}

// onVNISet records the far end's announced segment set.
func (h *Host) onVNISet(t *Tunnel, payload []byte) {
	if len(payload) < 3 {
		return
	}
	n := int(binary.BigEndian.Uint16(payload[1:]))
	if len(payload) < 3+4*n {
		return
	}
	t.lastHeard = h.eng.Now()
	set := make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		set[binary.BigEndian.Uint32(payload[3+4*i:])] = true
	}
	t.remoteVNIs = set
	t.vniKnown = true
}

// ---- uniform counter export ----

// VPCCounters exports the host's multi-tenant data-plane counters as a
// metrics.CounterSet: isolation drops, gateway decisions, quota drops,
// and per-VNI flood/suppression breakdowns. Experiments aggregate these
// instead of poking struct fields.
func (h *Host) VPCCounters() *metrics.CounterSet {
	c := metrics.NewCounterSet()
	c.Set("cross_vni_drops", h.CrossVNIDrops)
	c.Set("peered_forwards", h.PeeredForwards)
	c.Set("peer_policy_drops", h.PeerPolicyDrops)
	c.Set("quota_drops", h.QuotaDrops)
	c.Set("flooded_frames", h.FloodedFrames)
	c.Set("suppressed_floods", h.SuppressedFloods)
	c.Set("rehomes", h.Rehomes)
	c.Set("rehome_failures", h.RehomeFailures)
	c.Set("reregisters", h.Reregisters)
	c.Set("vip_arp_proxied", h.VIPARPProxied)
	c.Set("vip_steers", h.VIPSteers)
	c.Set("vip_announces_out", h.VIPAnnouncesOut)
	c.Set("vip_announces_in", h.VIPAnnouncesIn)
	c.Set("batch_flushes", h.BatchFlushes)
	c.Set("batch_cap_flushes", h.BatchCapFlushes)
	c.Set("batched_frames", h.BatchedFrames)
	c.Set("flows_active", uint64(h.flows.Active()))
	c.Set("flow_evictions", h.flows.Evictions())
	c.Set("flow_overflows", h.flows.Overflows())
	for reason, n := range h.flows.DropTotals() {
		c.Set("flow_drops."+obs.FlowDropReason(reason).String(), n)
	}
	// Per-VNI breakdowns, sorted, only for networks with activity (the
	// handles exist from segment creation even when never bumped).
	var vnis []uint32
	for _, name := range h.vniCounters.Names() {
		var vni uint32
		if _, err := fmt.Sscanf(name, "flood.vni%d", &vni); err != nil {
			continue
		}
		if h.vniCounters.Get(name) > 0 || h.vniCounters.Get(fmt.Sprintf("suppress.vni%d", vni)) > 0 {
			vnis = append(vnis, vni)
		}
	}
	sort.Slice(vnis, func(i, j int) bool { return vnis[i] < vnis[j] })
	for _, vni := range vnis {
		c.Set(fmt.Sprintf("flood.vni%d", vni), h.vniCounters.Get(fmt.Sprintf("flood.vni%d", vni)))
		c.Set(fmt.Sprintf("suppress.vni%d", vni), h.vniCounters.Get(fmt.Sprintf("suppress.vni%d", vni)))
	}
	return c
}
