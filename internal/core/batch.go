package core

import (
	"encoding/binary"

	"wavnet/internal/ether"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
)

// Tunnel egress batching.
//
// The per-frame hot path of PR 8 still paid one wire packet — and one
// scheduled netsim event — per forwarded frame. A TCP window arriving
// at the tap lands at a single virtual instant, so the frames to one
// destination can share a packet: switchFrame enqueues encoded frame
// images into a per-Tunnel egress queue, and a flush — at the end of
// the current sim timestamp (Engine.AtTimeEnd), or early when a queue
// hits Config.BatchMaxBytes/BatchMaxFrames — emits one aggregated
// paFrameBatch packet per destination:
//
//	[0x1A] ( [len:2 BE] [paFrame|paFrameVNI frame image] )*
//
// laid out behind the usual relay-envelope headroom, so a relayed
// destination fills its 9 header bytes in place exactly like the
// single-frame path. A batch holding one frame degrades to the legacy
// single-frame wire format (no container byte, no length prefix) so
// sparse traffic is bit-identical to PR 8.
//
// Invariants:
//   - Quota admission, FramesOut/BytesOut and QuotaDrops are per frame,
//     charged at enqueue time: batching never changes which frames a
//     tenant's bucket admits, only how admitted frames share packets.
//   - Flood determinism: destinations flush in first-enqueue order,
//     which for a flood is sortedTunnels order; frames within a batch
//     keep admission order, and the receive loop unbatches in order.
//   - Steady-state zero-alloc: the per-flush allocation is the batch
//     buffer itself, whose ownership transfers to the network (receive
//     frames alias it — the same amortized residual as PR 8's one
//     decap Frame), while the flush list and scratch are reused.

const (
	// batchLenBytes is the size of each entry's big-endian length prefix.
	batchLenBytes = 2
	// batchHeaderLen is the container overhead: the paFrameBatch byte.
	batchHeaderLen = 1
)

// appendBatchFrame appends one length-prefixed encapsulated frame image
// to dst and returns the extended slice (allocation-free when dst has
// capacity).
func appendBatchFrame(dst []byte, vni uint32, f *ether.Frame) []byte {
	n := VNIEncapLen(vni) + f.WireLen()
	dst = append(dst, byte(n>>8), byte(n))
	return AppendVNIFrame(dst, vni, f)
}

// enqueueFrame adds one admitted frame to t's egress batch, starting a
// fresh batch buffer when none is open and registering the
// end-of-timestamp flush hook on first use in this instant. Caps flush
// the open batch early so no wire packet exceeds the configured size.
func (h *Host) enqueueFrame(t *Tunnel, vni uint32, f *ether.Frame) {
	const headroom = rendezvous.RelayHeaderLen
	need := batchLenBytes + VNIEncapLen(vni) + f.WireLen()
	if t.egressFrames > 0 &&
		(len(t.egress)+need > headroom+batchHeaderLen+h.cfg.BatchMaxBytes ||
			t.egressFrames >= h.cfg.BatchMaxFrames) {
		h.flushTunnel(t, true)
	}
	if t.egressFrames == 0 {
		// Fresh buffer per batch: the previous one's ownership moved to
		// the network at flush (in-flight transit closures and receiver
		// frames alias it), so it can never be reused. Sized for the
		// byte cap up front so appends within one batch never grow it.
		capBytes := headroom + batchHeaderLen + h.cfg.BatchMaxBytes
		if capBytes < headroom+batchHeaderLen+need {
			capBytes = headroom + batchHeaderLen + need // jumbo frame
		}
		t.egress = make([]byte, headroom+batchHeaderLen, capBytes)
		t.egress[headroom] = paFrameBatch
	}
	t.egress = appendBatchFrame(t.egress, vni, f)
	t.egressFrames++
	h.BatchedFrames++
	if !t.egressQueued {
		t.egressQueued = true
		h.pendingFlush = append(h.pendingFlush, t)
	}
	if !h.flushHooked {
		h.flushHooked = true
		h.eng.AtTimeEnd(h.flushFn)
	}
}

// flushEgress is the end-of-timestamp hook: it emits every pending
// destination's batch in first-enqueue order. Registered once per
// virtual instant with frames pending (h.flushFn caches the closure).
func (h *Host) flushEgress() {
	h.flushHooked = false
	pend := h.pendingFlush
	for i := 0; i < len(pend); i++ {
		t := pend[i]
		pend[i] = nil
		t.egressQueued = false
		h.flushTunnel(t, false)
	}
	h.pendingFlush = pend[:0]
}

// flushTunnel emits t's open batch as one wire packet and hands the
// buffer to the network. A single-frame batch is sent in the legacy
// per-frame format; multi-frame batches go out as paFrameBatch. Either
// way a relayed tunnel's envelope is written in place into headroom —
// every relayed send is in-place, including the flood-across-two-relays
// case that used to copy.
func (h *Host) flushTunnel(t *Tunnel, capped bool) {
	const headroom = rendezvous.RelayHeaderLen
	wire := t.egress
	frames := t.egressFrames
	t.egress = nil
	t.egressFrames = 0
	if frames == 0 || len(wire) <= headroom+batchHeaderLen {
		return
	}
	h.BatchFlushes++
	if capped {
		h.BatchCapFlushes++
	}
	t.BatchesOut++
	h.batchSizes.Observe(float64(frames))
	if frames == 1 {
		// Legacy single-frame format: skip the container byte and the
		// length prefix; the bytes ahead of the frame image are spare
		// headroom for the relay envelope.
		frame := wire[headroom+batchHeaderLen+batchLenBytes:]
		if !t.Relayed {
			h.sock.SendTo(t.Remote, frame)
			return
		}
		env := wire[batchHeaderLen+batchLenBytes:]
		env[0] = rendezvous.RelayMagic
		binary.BigEndian.PutUint64(env[1:], t.relayChan)
		h.sock.SendTo(t.Remote, env)
		return
	}
	if !t.Relayed {
		h.sock.SendTo(t.Remote, wire[headroom:])
		return
	}
	wire[0] = rendezvous.RelayMagic
	binary.BigEndian.PutUint64(wire[1:], t.relayChan)
	h.sock.SendTo(t.Remote, wire)
}

// onTunnelBatch unbatches an aggregated paFrameBatch payload into the
// per-frame receive path. Each entry runs through the same zero-alloc
// decode, isolation check, learn and tap injection as a lone frame;
// a malformed entry ends the walk (frames before it still count).
func (h *Host) onTunnelBatch(t *Tunnel, payload []byte) {
	t.BatchesIn++
	off := batchHeaderLen
	for off+batchLenBytes <= len(payload) {
		n := int(payload[off])<<8 | int(payload[off+1])
		off += batchLenBytes
		if n == 0 || off+n > len(payload) {
			return
		}
		h.onTunnelFrame(t, payload[off:off+n])
		off += n
	}
}

// BatchSizes exposes the frames-per-batch distribution.
func (h *Host) BatchSizes() *obs.Histogram { return h.batchSizes }
