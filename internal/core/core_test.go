package core

import (
	"io"
	"testing"
	"time"

	"wavnet/internal/ipstack"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// world is a complete test universe: one rendezvous server and n NATed
// hosts at distinct sites.
type world struct {
	eng   *sim.Engine
	nw    *netsim.Network
	rdv   *rendezvous.Server
	hosts []*Host
	gws   []*nat.Gateway
}

// buildWorld creates n hosts behind the given NAT types (cycled), each at
// its own site with rttMS[i] round-trip to the server site.
func buildWorld(t *testing.T, seed int64, types []nat.Type, rtts []sim.Duration) *world {
	return buildWorldCfg(t, seed, types, rtts, rendezvous.Config{})
}

// buildWorldCfg is buildWorld with an explicit rendezvous configuration.
func buildWorldCfg(t *testing.T, seed int64, types []nat.Type, rtts []sim.Duration, rcfg rendezvous.Config) *world {
	t.Helper()
	w := &world{eng: sim.NewEngine(seed)}
	w.nw = netsim.New(w.eng)
	hub := w.nw.NewSite("hub")

	rdvHost := w.nw.NewPublicHost("rdv", hub, netsim.MustParseIP("50.0.0.1"), 100e6, time.Millisecond)
	srv, err := rendezvous.NewServer(rdvHost, netsim.MustParseIP("50.0.0.2"), rcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Bootstrap()
	w.rdv = srv

	for i, typ := range types {
		site := w.nw.NewSite("site")
		w.nw.SetRTT(hub, site, rtts[i])
		for j := range w.nw.Sites() {
			if j > 0 && j <= i {
				// Inter-host sites: sum of spokes approximates a hub
				// topology; set it explicitly for determinism.
				w.nw.SetRTT(w.nw.Sites()[j], site, rtts[i]+rtts[j-1])
			}
		}
		gwIP := netsim.MakeIP(60, byte(i+1), 0, 1)
		gw := w.nw.NewPublicHost("gw", site, gwIP, 100e6, 100*time.Microsecond)
		lan := w.nw.NewLan("lan", site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		w.gws = append(w.gws, nat.Attach(gw, typ))
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		h, err := NewHost(phys, hostName(i), Config{})
		if err != nil {
			t.Fatal(err)
		}
		w.hosts = append(w.hosts, h)
	}
	return w
}

func hostName(i int) string { return string(rune('a'+i)) + "-host" }

// joinAll joins every host, failing the test on error.
func (w *world) joinAll(t *testing.T) {
	t.Helper()
	errs := make([]error, len(w.hosts))
	for i, h := range w.hosts {
		i, h := i, h
		w.eng.Spawn("join", func(p *sim.Proc) {
			errs[i] = h.Join(p, w.rdv.Addr())
		})
	}
	w.eng.RunFor(30 * time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("host %d join: %v", i, err)
		}
	}
}

func TestJoinDetectsNATAndRegisters(t *testing.T) {
	w := buildWorld(t, 1, []nat.Type{nat.FullCone, nat.PortRestrictedCone},
		[]sim.Duration{20 * time.Millisecond, 40 * time.Millisecond})
	w.joinAll(t)
	if w.hosts[0].NATClass() != stun.ClassFullCone {
		t.Fatalf("host0 class = %v", w.hosts[0].NATClass())
	}
	if w.hosts[1].NATClass() != stun.ClassPortRestrictedCone {
		t.Fatalf("host1 class = %v", w.hosts[1].NATClass())
	}
	if w.rdv.Sessions() != 2 {
		t.Fatalf("sessions = %d", w.rdv.Sessions())
	}
	if w.hosts[0].Mapped().IP != w.gws[0].PublicIP() {
		t.Fatalf("host0 mapped %v not behind gateway %v", w.hosts[0].Mapped(), w.gws[0].PublicIP())
	}
}

func TestConnectEstablishesTunnel(t *testing.T) {
	w := buildWorld(t, 2, []nat.Type{nat.RestrictedCone, nat.PortRestrictedCone},
		[]sim.Duration{20 * time.Millisecond, 30 * time.Millisecond})
	w.joinAll(t)
	var tun *Tunnel
	var err error
	w.eng.Spawn("connect", func(p *sim.Proc) {
		tun, err = w.hosts[0].ConnectTo(p, hostName(1))
	})
	w.eng.RunFor(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tun == nil || !tun.Established() {
		t.Fatal("tunnel not established")
	}
	// Both ends must hold an established tunnel.
	if t2, ok := w.hosts[1].Tunnel(hostName(0)); !ok || !t2.Established() {
		t.Fatal("peer side tunnel missing")
	}
	// The tunnel endpoint must be the peer's NAT mapping, not a private
	// address.
	if tun.Remote.IP != w.gws[1].PublicIP() {
		t.Fatalf("tunnel remote %v, want behind %v", tun.Remote, w.gws[1].PublicIP())
	}
}

func TestConnectRefusesUnpunchablePairWithRelayDisabled(t *testing.T) {
	// The paper's behaviour: STUN marks symmetric NATs unsuitable for
	// hole punching and the connect is refused outright.
	w := buildWorldCfg(t, 3, []nat.Type{nat.Symmetric, nat.Symmetric},
		[]sim.Duration{20 * time.Millisecond, 30 * time.Millisecond},
		rendezvous.Config{DisableRelay: true})
	w.joinAll(t)
	var err error
	w.eng.Spawn("connect", func(p *sim.Proc) {
		_, err = w.hosts[0].ConnectTo(p, hostName(1))
	})
	w.eng.RunFor(30 * time.Second)
	if err == nil {
		t.Fatal("symmetric-symmetric connect should fail with the relay disabled")
	}
}

func TestUnpunchablePairFallsBackToRelay(t *testing.T) {
	w := buildWorld(t, 3, []nat.Type{nat.Symmetric, nat.Symmetric},
		[]sim.Duration{20 * time.Millisecond, 30 * time.Millisecond})
	w.joinAll(t)
	var tun *Tunnel
	var err error
	var rtt sim.Duration
	w.eng.Spawn("connect", func(p *sim.Proc) {
		tun, err = w.hosts[0].ConnectTo(p, hostName(1))
		if err != nil {
			return
		}
		rtt, err = w.hosts[0].TunnelRTT(p, hostName(1))
	})
	w.eng.RunFor(60 * time.Second)
	if err != nil {
		t.Fatalf("relay fallback: %v", err)
	}
	if !tun.Relayed {
		t.Fatal("tunnel between symmetric NATs should be relayed")
	}
	if tun.Remote != w.rdv.Addr() {
		t.Fatalf("relayed tunnel remote %v, want broker %v", tun.Remote, w.rdv.Addr())
	}
	// The relayed path transits the hub twice: RTT ≈ 20+30 ms plus
	// processing; a direct path would be impossible here.
	if rtt < 45*time.Millisecond {
		t.Fatalf("relayed RTT %v too low for the via-broker path", rtt)
	}
	if w.rdv.RelayChannelCount() == 0 || w.rdv.RelayFrames == 0 {
		t.Fatal("broker shows no relay activity")
	}
	// Data flows: ICMP over the virtual LAN through the relay.
	a := w.hosts[0].CreateDom0(netsim.MustParseIP("10.3.0.1"))
	w.hosts[1].CreateDom0(netsim.MustParseIP("10.3.0.2"))
	var pingRTT sim.Duration
	var pingErr error
	w.eng.Spawn("ping", func(p *sim.Proc) {
		pingRTT, pingErr = a.Ping(p, netsim.MustParseIP("10.3.0.2"), 56, 10*time.Second)
	})
	w.eng.RunFor(30 * time.Second)
	if pingErr != nil {
		t.Fatalf("ping over relayed tunnel: %v", pingErr)
	}
	if pingRTT < 45*time.Millisecond {
		t.Fatalf("relayed ping RTT %v too low", pingRTT)
	}
}

func TestTunnelRTTMatchesPath(t *testing.T) {
	w := buildWorld(t, 4, []nat.Type{nat.FullCone, nat.FullCone},
		[]sim.Duration{10 * time.Millisecond, 25 * time.Millisecond})
	w.joinAll(t)
	var rtt sim.Duration
	var err error
	w.eng.Spawn("probe", func(p *sim.Proc) {
		if _, err = w.hosts[0].ConnectTo(p, hostName(1)); err != nil {
			return
		}
		rtt, err = w.hosts[0].TunnelRTT(p, hostName(1))
	})
	w.eng.RunFor(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Host-to-host RTT = 10+25 = 35 ms plus LAN/access hops.
	if rtt < 35*time.Millisecond || rtt > 40*time.Millisecond {
		t.Fatalf("tunnel rtt = %v, want ≈35 ms", rtt)
	}
}

// virtualPing wires dom0 stacks on both hosts and pings across the
// tunnel: exercises ARP resolution and ICMP through the whole
// encapsulation path.
func TestVirtualLanPingAndTCP(t *testing.T) {
	w := buildWorld(t, 5, []nat.Type{nat.FullCone, nat.RestrictedCone},
		[]sim.Duration{15 * time.Millisecond, 22 * time.Millisecond})
	w.joinAll(t)
	s0 := w.hosts[0].CreateDom0(netsim.MustParseIP("10.10.0.1"))
	s1 := w.hosts[1].CreateDom0(netsim.MustParseIP("10.10.0.2"))

	var rtt sim.Duration
	var pingErr, tcpErr error
	served := 0
	w.eng.Spawn("server", func(p *sim.Proc) {
		l, _ := s1.Listen(5001)
		c, err := l.Accept(p)
		if err != nil {
			tcpErr = err
			return
		}
		buf := make([]byte, 32<<10)
		for {
			n, err := c.Read(p, buf)
			served += n
			if err == io.EOF {
				return
			}
			if err != nil {
				tcpErr = err
				return
			}
		}
	})
	w.eng.Spawn("client", func(p *sim.Proc) {
		if _, err := w.hosts[0].ConnectTo(p, hostName(1)); err != nil {
			pingErr = err
			return
		}
		// First ping pays ARP resolution across the tunnel; measure the
		// second.
		if _, pingErr = s0.Ping(p, s1.IP(), 56, 5*time.Second); pingErr != nil {
			return
		}
		rtt, pingErr = s0.Ping(p, s1.IP(), 56, 5*time.Second)
		if pingErr != nil {
			return
		}
		c, err := s0.Dial(p, netsim.Addr{IP: s1.IP(), Port: 5001})
		if err != nil {
			tcpErr = err
			return
		}
		chunk := make([]byte, 8192)
		for sent := 0; sent < 256<<10; sent += len(chunk) {
			c.Write(p, chunk)
		}
		c.Close()
	})
	w.eng.RunFor(120 * time.Second)
	if pingErr != nil || tcpErr != nil {
		t.Fatalf("ping err=%v tcp err=%v", pingErr, tcpErr)
	}
	// Virtual RTT ≈ physical RTT (37 ms) + small encapsulation cost.
	if rtt < 37*time.Millisecond || rtt > 45*time.Millisecond {
		t.Fatalf("virtual ping rtt = %v", rtt)
	}
	if served != 256<<10 {
		t.Fatalf("TCP through tunnel served %d bytes", served)
	}
}

func TestKeepaliveHoldsNATMapping(t *testing.T) {
	w := buildWorld(t, 6, []nat.Type{nat.PortRestrictedCone, nat.PortRestrictedCone},
		[]sim.Duration{10 * time.Millisecond, 10 * time.Millisecond})
	// Short NAT timeout: 20 s; pulses every 5 s must keep it alive.
	for _, g := range w.gws {
		g.MappingTimeout = 20 * time.Second
	}
	w.joinAll(t)
	var rttErr error
	var late sim.Duration
	w.eng.Spawn("driver", func(p *sim.Proc) {
		if _, err := w.hosts[0].ConnectTo(p, hostName(1)); err != nil {
			rttErr = err
			return
		}
		// Idle (apart from keepalives) for 3 minutes, then probe.
		p.Sleep(3 * time.Minute)
		late, rttErr = w.hosts[0].TunnelRTT(p, hostName(1))
	})
	w.eng.RunFor(5 * time.Minute)
	if rttErr != nil {
		t.Fatalf("tunnel died despite keepalives: %v", rttErr)
	}
	if late <= 0 {
		t.Fatal("no RTT measured after idle period")
	}
	// Both tunnels must still be established.
	tun, _ := w.hosts[0].Tunnel(hostName(1))
	if tun == nil || !tun.Established() || tun.PulsesOut < 30 {
		t.Fatalf("keepalives not flowing: %+v", tun)
	}
}

func TestDeadPeerDetection(t *testing.T) {
	w := buildWorld(t, 7, []nat.Type{nat.FullCone, nat.FullCone},
		[]sim.Duration{10 * time.Millisecond, 10 * time.Millisecond})
	w.joinAll(t)
	w.eng.Spawn("connect", func(p *sim.Proc) {
		w.hosts[0].ConnectTo(p, hostName(1))
	})
	w.eng.RunFor(15 * time.Second)
	// Kill host 1 outright.
	w.hosts[1].Leave()
	w.eng.RunFor(2 * time.Minute)
	if _, ok := w.hosts[0].Tunnel(hostName(1)); ok {
		t.Fatal("dead tunnel not garbage collected")
	}
}

func TestBroadcastFloodsAllTunnels(t *testing.T) {
	w := buildWorld(t, 8, []nat.Type{nat.FullCone, nat.FullCone, nat.FullCone},
		[]sim.Duration{10 * time.Millisecond, 15 * time.Millisecond, 20 * time.Millisecond})
	w.joinAll(t)
	stacks := []*ipstack.Stack{
		w.hosts[0].CreateDom0(netsim.MustParseIP("10.10.0.1")),
		w.hosts[1].CreateDom0(netsim.MustParseIP("10.10.0.2")),
		w.hosts[2].CreateDom0(netsim.MustParseIP("10.10.0.3")),
	}
	var rtt1, rtt2 sim.Duration
	var err1, err2 error
	w.eng.Spawn("mesh", func(p *sim.Proc) {
		if _, err := w.hosts[0].ConnectTo(p, hostName(1)); err != nil {
			err1 = err
			return
		}
		if _, err := w.hosts[0].ConnectTo(p, hostName(2)); err != nil {
			err2 = err
			return
		}
		// ARP for both peers goes out as a broadcast over both tunnels.
		rtt1, err1 = stacks[0].Ping(p, stacks[1].IP(), 56, 5*time.Second)
		rtt2, err2 = stacks[0].Ping(p, stacks[2].IP(), 56, 5*time.Second)
	})
	w.eng.RunFor(60 * time.Second)
	if err1 != nil || err2 != nil {
		t.Fatalf("pings: %v / %v", err1, err2)
	}
	if rtt1 <= 0 || rtt2 <= 0 || rtt2 < rtt1 {
		t.Fatalf("rtts: %v / %v (farther peer must not be faster)", rtt1, rtt2)
	}
}

func TestLookupByName(t *testing.T) {
	w := buildWorld(t, 9, []nat.Type{nat.FullCone, nat.RestrictedCone},
		[]sim.Duration{10 * time.Millisecond, 10 * time.Millisecond})
	w.joinAll(t)
	var recs []rendezvous.HostRecord
	var err error
	w.eng.Spawn("lookup", func(p *sim.Proc) {
		recs, err = w.hosts[0].Lookup(p, hostName(1))
	})
	w.eng.RunFor(10 * time.Second)
	if err != nil || len(recs) != 1 {
		t.Fatalf("lookup: err=%v recs=%v", err, recs)
	}
	if recs[0].NAT != nat.RestrictedCone {
		t.Fatalf("record NAT = %v", recs[0].NAT)
	}
}

func TestMultiServerIntroduction(t *testing.T) {
	// Two rendezvous servers in a CAN; hosts registered on different
	// servers must still connect (brokered via introduce/intro-ack).
	eng := sim.NewEngine(10)
	nw := netsim.New(eng)
	s1 := nw.NewSite("s1")
	s2 := nw.NewSite("s2")
	s3 := nw.NewSite("s3")
	nw.SetRTT(s1, s2, 30*time.Millisecond)
	nw.SetRTT(s1, s3, 40*time.Millisecond)
	nw.SetRTT(s2, s3, 50*time.Millisecond)

	r1Host := nw.NewPublicHost("rdv1", s1, netsim.MustParseIP("50.0.0.1"), 0, time.Millisecond)
	r2Host := nw.NewPublicHost("rdv2", s2, netsim.MustParseIP("50.0.1.1"), 0, time.Millisecond)
	r1, err := rendezvous.NewServer(r1Host, netsim.MustParseIP("50.0.0.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rendezvous.NewServer(r2Host, netsim.MustParseIP("50.0.1.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1.Bootstrap()
	joined := false
	r2.JoinOverlay(r1.OverlayAddr(), func(e error) {
		if e != nil {
			t.Errorf("overlay join: %v", e)
		}
		joined = true
	})
	eng.RunFor(5 * time.Second)
	if !joined {
		t.Fatal("server 2 did not join the CAN")
	}

	mkHost := func(site *netsim.Site, ipByte byte, name string) *Host {
		gw := nw.NewPublicHost("gw"+name, site, netsim.MakeIP(60, ipByte, 0, 1), 0, 100*time.Microsecond)
		lan := nw.NewLan("lan"+name, site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		nat.Attach(gw, nat.FullCone)
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		h, err := NewHost(phys, name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ha := mkHost(s3, 1, "alpha")
	hb := mkHost(s3, 2, "beta")

	var joinA, joinB, connErr error
	var tun *Tunnel
	eng.Spawn("a", func(p *sim.Proc) {
		joinA = ha.Join(p, r1.Addr())
	})
	eng.Spawn("b", func(p *sim.Proc) {
		joinB = hb.Join(p, r2.Addr())
	})
	eng.RunFor(20 * time.Second)
	if joinA != nil || joinB != nil {
		t.Fatalf("joins: %v / %v", joinA, joinB)
	}
	eng.Spawn("connect", func(p *sim.Proc) {
		tun, connErr = ha.ConnectTo(p, "beta")
	})
	eng.RunFor(30 * time.Second)
	if connErr != nil {
		t.Fatalf("cross-server connect: %v", connErr)
	}
	if tun == nil || !tun.Established() {
		t.Fatal("tunnel not established across servers")
	}
}

func TestMultiServerRelayForSymmetricPair(t *testing.T) {
	// Hosts behind symmetric NATs registered on *different* brokers:
	// the target's broker hosts the relay channel, and the requester's
	// endpoint address is learned from its first relay envelope.
	eng := sim.NewEngine(11)
	nw := netsim.New(eng)
	s1 := nw.NewSite("s1")
	s2 := nw.NewSite("s2")
	s3 := nw.NewSite("s3")
	nw.SetRTT(s1, s2, 30*time.Millisecond)
	nw.SetRTT(s1, s3, 40*time.Millisecond)
	nw.SetRTT(s2, s3, 50*time.Millisecond)

	r1Host := nw.NewPublicHost("rdv1", s1, netsim.MustParseIP("50.0.0.1"), 0, time.Millisecond)
	r2Host := nw.NewPublicHost("rdv2", s2, netsim.MustParseIP("50.0.1.1"), 0, time.Millisecond)
	r1, err := rendezvous.NewServer(r1Host, netsim.MustParseIP("50.0.0.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := rendezvous.NewServer(r2Host, netsim.MustParseIP("50.0.1.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r1.Bootstrap()
	r2.JoinOverlay(r1.OverlayAddr(), func(e error) {
		if e != nil {
			t.Errorf("overlay join: %v", e)
		}
	})
	eng.RunFor(5 * time.Second)

	mkHost := func(site *netsim.Site, ipByte byte, name string) *Host {
		gw := nw.NewPublicHost("gw"+name, site, netsim.MakeIP(60, ipByte, 0, 1), 0, 100*time.Microsecond)
		lan := nw.NewLan("lan"+name, site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		nat.Attach(gw, nat.Symmetric)
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		h, err := NewHost(phys, name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ha := mkHost(s3, 1, "alpha")
	hb := mkHost(s3, 2, "beta")

	var joinA, joinB error
	eng.Spawn("a", func(p *sim.Proc) { joinA = ha.Join(p, r1.Addr()) })
	eng.Spawn("b", func(p *sim.Proc) { joinB = hb.Join(p, r2.Addr()) })
	eng.RunFor(20 * time.Second)
	if joinA != nil || joinB != nil {
		t.Fatalf("joins: %v / %v", joinA, joinB)
	}

	var tun *Tunnel
	var connErr error
	var rtt sim.Duration
	eng.Spawn("connect", func(p *sim.Proc) {
		tun, connErr = ha.ConnectTo(p, "beta")
		if connErr != nil {
			return
		}
		rtt, connErr = ha.TunnelRTT(p, "beta")
	})
	eng.RunFor(60 * time.Second)
	if connErr != nil {
		t.Fatalf("cross-server relay connect: %v", connErr)
	}
	if !tun.Relayed {
		t.Fatal("cross-server symmetric pair should be relayed")
	}
	// The channel must live at the *target's* broker (r2), and the
	// requester must address it there.
	if tun.Remote != r2.Addr() {
		t.Fatalf("relay endpoint %v, want target broker %v", tun.Remote, r2.Addr())
	}
	if r2.RelayFrames == 0 {
		t.Fatal("target broker relayed nothing")
	}
	if r1.RelayFrames != 0 {
		t.Fatal("requester broker should not carry relay traffic")
	}
	// Path: alpha(s3) -> r2(s2) -> beta(s3): 50+50 ms plus processing.
	if rtt < 90*time.Millisecond {
		t.Fatalf("relayed RTT %v too low for the via-r2 path", rtt)
	}
}

func TestJoinAnyFailsOverToLiveServer(t *testing.T) {
	// Two rendezvous servers; the first is dead. JoinAny must register
	// with the second after burning the first's timeout.
	eng := sim.NewEngine(13)
	nw := netsim.New(eng)
	hub := nw.NewSite("hub")
	deadHost := nw.NewPublicHost("dead", hub, netsim.MustParseIP("50.0.0.1"), 0, time.Millisecond)
	dead, err := rendezvous.NewServer(deadHost, netsim.MustParseIP("50.0.0.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	dead.Bootstrap()
	dead.Shutdown()
	liveHost := nw.NewPublicHost("live", hub, netsim.MustParseIP("50.0.1.1"), 0, time.Millisecond)
	live, err := rendezvous.NewServer(liveHost, netsim.MustParseIP("50.0.1.2"), rendezvous.Config{})
	if err != nil {
		t.Fatal(err)
	}
	live.Bootstrap()

	site := nw.NewSite("s")
	nw.SetRTT(hub, site, 20*time.Millisecond)
	gw := nw.NewPublicHost("gw", site, netsim.MustParseIP("60.1.0.1"), 0, 100*time.Microsecond)
	lan := nw.NewLan("lan", site, 1e9, 50*time.Microsecond)
	lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
	nat.Attach(gw, nat.RestrictedCone)
	phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
	h, err := NewHost(phys, "roamer", Config{})
	if err != nil {
		t.Fatal(err)
	}
	var joinErr error
	eng.Spawn("join", func(p *sim.Proc) {
		joinErr = h.JoinAny(p, []netsim.Addr{dead.Addr(), live.Addr()})
	})
	eng.RunFor(2 * time.Minute)
	if joinErr != nil {
		t.Fatalf("JoinAny with one live server: %v", joinErr)
	}
	if live.Sessions() != 1 {
		t.Fatalf("live server has %d sessions, want 1", live.Sessions())
	}
	// Nothing registered at the dead server, and lookups work.
	var recs []rendezvous.HostRecord
	eng.Spawn("lookup", func(p *sim.Proc) {
		recs, _ = h.Lookup(p, "roamer")
	})
	eng.RunFor(10 * time.Second)
	if len(recs) != 1 {
		t.Fatalf("lookup through failover server: %v", recs)
	}
	// The election left its trail: both brokers were attempted in order
	// (the dead one first, the winner last), and the full list became
	// the standing failover candidate set. Re-home elections read this
	// to skip a broker already found dead instead of retrying it.
	attempts := h.JoinAttempts()
	if len(attempts) != 2 || attempts[0] != dead.Addr() || attempts[1] != live.Addr() {
		t.Fatalf("JoinAttempts = %v, want [dead live]", attempts)
	}
	cands := h.BrokerCandidates()
	if len(cands) != 2 || cands[0] != dead.Addr() || cands[1] != live.Addr() {
		t.Fatalf("BrokerCandidates = %v, want the JoinAny list", cands)
	}
}

func TestHostChurnLeavesNoResidue(t *testing.T) {
	// A stable host watches transient peers join, connect, ping and
	// leave. Tunnels to departed peers must be garbage-collected by the
	// CONNECT_PULSE liveness check, and broker sessions must expire.
	w := buildWorldCfg(t, 21,
		[]nat.Type{nat.FullCone, nat.RestrictedCone, nat.PortRestrictedCone, nat.FullCone},
		[]sim.Duration{10 * time.Millisecond, 20 * time.Millisecond,
			30 * time.Millisecond, 15 * time.Millisecond},
		rendezvous.Config{SessionTTL: 45 * time.Second})
	w.joinAll(t)
	stable := w.hosts[0]
	stable.CreateDom0(netsim.MustParseIP("10.3.0.1"))

	for cycle := 0; cycle < 3; cycle++ {
		transient := w.hosts[1+cycle%3]
		ip := netsim.MakeIP(10, 3, 1, byte(cycle+1))
		var st *ipstack.Stack
		if transient.Dom0() == nil {
			st = transient.CreateDom0(ip)
		} else {
			st = transient.Dom0()
			ip = st.IP()
		}
		var rtt sim.Duration
		var err error
		w.eng.Spawn("cycle", func(p *sim.Proc) {
			if transient.Tunnels()["a-host"] == nil {
				if _, err = transient.ConnectTo(p, hostName(0)); err != nil {
					return
				}
			}
			rtt, err = st.Ping(p, netsim.MustParseIP("10.3.0.1"), 56, 10*time.Second)
		})
		w.eng.RunFor(30 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if rtt <= 0 {
			t.Fatalf("cycle %d: no rtt", cycle)
		}
		transient.Leave()
		// Past TunnelTimeout (30 s): the stable side must have dropped it.
		w.eng.RunFor(90 * time.Second)
		if tun, ok := stable.Tunnel(transient.Name()); ok && tun.Established() {
			t.Fatalf("cycle %d: stable host still holds tunnel to departed %s",
				cycle, transient.Name())
		}
	}
	// Only the stable host (which still pulses) should hold a session.
	if got := w.rdv.Sessions(); got != 1 {
		t.Fatalf("broker holds %d sessions after churn, want 1", got)
	}
}

func TestTunnelDiesWithoutAdequateKeepalive(t *testing.T) {
	// CONNECT_PULSE slower than the NAT mapping timeout (paper §II.B's
	// failure mode): the mapping expires, pulses stop arriving, and both
	// ends garbage-collect the tunnel via TunnelTimeout.
	w := buildWorld(t, 9, []nat.Type{nat.PortRestrictedCone, nat.PortRestrictedCone},
		[]sim.Duration{15 * time.Millisecond, 25 * time.Millisecond})
	// A cone NAT keeps one mapping per socket and *any* outbound packet
	// refreshes it, so the timeout must undercut the combined cadence of
	// tunnel and broker keepalives (two 45 s clocks ≈ 20 s gaps).
	for _, g := range w.gws {
		g.MappingTimeout = 15 * time.Second
	}
	for i, h := range w.hosts {
		h.Leave()
		slow, err := NewHost(h.Phys(), "slow-"+hostName(i), Config{
			Port:                  4600,
			PulsePeriod:           45 * time.Second,
			RendezvousPulsePeriod: 45 * time.Second,
			TunnelTimeout:         90 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.hosts[i] = slow
	}
	errs := make([]error, 2)
	for i, h := range w.hosts {
		i, h := i, h
		w.eng.Spawn("join", func(p *sim.Proc) { errs[i] = h.Join(p, w.rdv.Addr()) })
	}
	w.eng.RunFor(20 * time.Second)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("joins: %v / %v", errs[0], errs[1])
	}
	var connErr error
	w.eng.Spawn("connect", func(p *sim.Proc) {
		_, connErr = w.hosts[0].ConnectTo(p, "slow-"+hostName(1))
	})
	w.eng.RunFor(20 * time.Second)
	if connErr != nil {
		t.Fatalf("connect: %v", connErr)
	}
	// Idle long enough for the mapping to lapse and liveness to fire.
	w.eng.RunFor(10 * time.Minute)
	if tun, ok := w.hosts[0].Tunnel("slow-" + hostName(1)); ok && tun.Established() {
		t.Fatal("tunnel survived although pulses cannot keep the NAT mapping alive")
	}
}

func TestDataPlaneSurvivesBrokerDeath(t *testing.T) {
	// The paper's architecture point (§II.B): after connection setup the
	// rendezvous layer is out of the data path. Killing the broker must
	// not disturb established tunnels — only new connects fail.
	w := buildWorld(t, 5, []nat.Type{nat.PortRestrictedCone, nat.PortRestrictedCone, nat.FullCone},
		[]sim.Duration{15 * time.Millisecond, 25 * time.Millisecond, 20 * time.Millisecond})
	w.joinAll(t)
	var connErr error
	w.eng.Spawn("connect", func(p *sim.Proc) {
		_, connErr = w.hosts[0].ConnectTo(p, hostName(1))
	})
	w.eng.RunFor(20 * time.Second)
	if connErr != nil {
		t.Fatalf("connect: %v", connErr)
	}
	a := w.hosts[0].CreateDom0(netsim.MustParseIP("10.3.0.1"))
	w.hosts[1].CreateDom0(netsim.MustParseIP("10.3.0.2"))

	w.rdv.Shutdown()
	// Long idle spans several keepalive and NAT timeout windows.
	w.eng.RunFor(2 * time.Minute)

	var rtt sim.Duration
	var pingErr, newConnErr error
	w.eng.Spawn("after", func(p *sim.Proc) {
		rtt, pingErr = a.Ping(p, netsim.MustParseIP("10.3.0.2"), 56, 10*time.Second)
		_, newConnErr = w.hosts[0].ConnectTo(p, hostName(2))
	})
	w.eng.RunFor(2 * time.Minute)
	if pingErr != nil {
		t.Fatalf("established tunnel died with the broker: %v", pingErr)
	}
	if rtt <= 0 {
		t.Fatal("no RTT over the surviving tunnel")
	}
	if tun, ok := w.hosts[0].Tunnel(hostName(1)); !ok || !tun.Established() {
		t.Fatal("tunnel no longer established after broker death")
	}
	if newConnErr == nil {
		t.Fatal("new connect should fail with the broker dead")
	}
}

func TestDataBypassesRendezvous(t *testing.T) {
	// The paper's core claim: after setup, application data never
	// touches the rendezvous server.
	w := buildWorld(t, 11, []nat.Type{nat.FullCone, nat.FullCone},
		[]sim.Duration{10 * time.Millisecond, 10 * time.Millisecond})
	w.joinAll(t)
	s0 := w.hosts[0].CreateDom0(netsim.MustParseIP("10.10.0.1"))
	s1 := w.hosts[1].CreateDom0(netsim.MustParseIP("10.10.0.2"))
	w.eng.Spawn("driver", func(p *sim.Proc) {
		if _, err := w.hosts[0].ConnectTo(p, hostName(1)); err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		s0.Ping(p, s1.IP(), 56, 5*time.Second)
	})
	w.eng.RunFor(20 * time.Second)
	before := w.rdv.Addr()
	rdvHost := w.nw.HostByIP(before.IP)
	basePkts := rdvHost.RecvPackets
	// Stream pings for a while: server traffic must not grow with data.
	w.eng.Spawn("data", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			s0.Ping(p, s1.IP(), 500, 5*time.Second)
		}
	})
	w.eng.RunFor(60 * time.Second)
	grew := rdvHost.RecvPackets - basePkts
	// Only session pulses (every 15 s × 2 hosts) should arrive: allow a
	// small allowance, far below the 50 pings × several packets each.
	if grew > 20 {
		t.Fatalf("rendezvous server saw %d packets during data transfer", grew)
	}
}
