// Package core implements the WAVNet host: the paper's primary
// contribution. A Host owns one physical UDP socket over which it
// multiplexes (1) rendezvous-layer control traffic, (2) STUN binding
// requests, (3) UDP hole punching, and (4) the Packet Assembler's
// encapsulated Ethernet frames and CONNECT_PULSE keepalives.
//
// Locally the host runs a software bridge; WAVNet attaches to it through
// a tap port. Frames leaving the bridge through the tap are encapsulated
// and switched onto direct host-to-host tunnels by the WAV-Switch (a MAC
// learning table whose ports are wide-area tunnels); frames arriving
// from tunnels are injected back through the tap. VMs and the host's own
// virtual stack plug into the same bridge, which is what makes gratuitous
// ARP after live migration propagate to every connected host.
package core

import (
	"errors"
	"fmt"
	"sort"

	"wavnet/internal/can"
	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/metrics"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// Packet Assembler type identifiers (first payload byte). They are
// chosen to collide with neither STUN (0x00/0x01 first byte) nor JSON
// ('{' = 0x7B) so one socket can carry everything.
const (
	paPulse       = 0x10 // CONNECT_PULSE: 2-byte keepalive
	paFrame       = 0x11 // encapsulated Ethernet frame
	paPunch       = 0x12 // hole punching probe
	paPunchAck    = 0x13 // hole punching acknowledgement
	paEcho        = 0x14 // tunnel RTT probe
	paEchoResp    = 0x15 // tunnel RTT response
	paFrameVNI    = 0x17 // VNI-tagged encapsulated Ethernet frame (multi-tenant; 0x16 is rendezvous.RelayMagic)
	paVNISet      = 0x18 // VNI membership announcement (flood suppression)
	paVIPAnnounce = 0x19 // service VIP backend health transition (vip.go)
	paFrameBatch  = 0x1A // aggregated egress batch: [0x1A]([len:2][frame image])* (batch.go)
)

// Errors returned by Host operations.
var (
	ErrNotJoined    = errors.New("core: host has not joined a rendezvous server")
	ErrPunchFailed  = errors.New("core: hole punching failed")
	ErrTimeout      = errors.New("core: operation timed out")
	ErrUnreachable  = errors.New("core: rendezvous server unreachable")
	ErrNoSuchTunnel = errors.New("core: no tunnel to peer")
	ErrInterrupted  = errors.New("core: operation interrupted")
)

// Config tunes a WAVNet host.
type Config struct {
	Port uint16 // WAVNet UDP port (default 4500)

	// PulsePeriod is the CONNECT_PULSE interval on established tunnels;
	// the paper uses 5 s against NAT timeouts of minutes.
	PulsePeriod sim.Duration
	// TunnelTimeout declares a tunnel dead with no inbound traffic.
	TunnelTimeout sim.Duration
	// RendezvousPulsePeriod keeps the broker session (and its NAT
	// mapping) alive.
	RendezvousPulsePeriod sim.Duration
	// BrokerTimeout declares the home broker dead when nothing has been
	// heard from it (pulse acks, RPC replies, punch orders) for this
	// long; the host then re-homes onto another broker of its candidate
	// set (default 3 × RendezvousPulsePeriod).
	BrokerTimeout sim.Duration

	PunchTries    int
	PunchInterval sim.Duration

	// RPCTimeout bounds control-plane waits (join, lookup, connect).
	RPCTimeout sim.Duration

	// Attrs is the host's resource state vector for CAN-indexed queries.
	Attrs can.Point

	// BridgeLatency is the software bridge's per-frame forwarding cost.
	BridgeLatency sim.Duration
	// PacketCost is the Packet Assembler's per-packet processing time on
	// both encapsulation and decapsulation (user-level tap handling).
	PacketCost sim.Duration

	// BatchMaxBytes / BatchMaxFrames cap one egress batch (batch.go): a
	// destination's queue is flushed early once its batched payload
	// would exceed BatchMaxBytes or holds BatchMaxFrames frames.
	// BatchMaxBytes defaults to the classic 1500-byte path-MTU budget:
	// a UDP datagram above it would IP-fragment on a real path, and a
	// fragmented batch dies whole when any fragment drops — measured
	// here as multi-segment TCP holes that stall recovery into RTOs.
	// Under the MTU budget a full-size data frame rides alone (legacy
	// single-frame format, bit-identical to the unbatched wire), while
	// same-instant small frames — ACK trains, ARP, control chatter —
	// coalesce. BatchMaxFrames = 1 disables coalescing entirely.
	BatchMaxBytes  int
	BatchMaxFrames int

	// Tracer records sim-time spans for the host's multi-step control
	// flows (tunnel establishment, broker re-home elections); nil
	// disables tracing.
	Tracer *obs.Trace

	// FlowSlots sizes the preallocated flow accounting table (flow.go),
	// rounded up to a power of two (default 1024). FlowSweepPeriod and
	// FlowIdle drive the off-path eviction sweep: a flow with no
	// activity for FlowIdle is closed and emitted to FlowLog on the next
	// sweep tick. FlowLog is the shared flow-log sink (nil discards
	// closed-flow records; live flows stay scrapeable either way).
	FlowSlots       int
	FlowSweepPeriod sim.Duration
	FlowIdle        sim.Duration
	FlowLog         *obs.FlowLog
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = 4500
	}
	if c.PulsePeriod <= 0 {
		c.PulsePeriod = 5 * sim.Second
	}
	if c.TunnelTimeout <= 0 {
		c.TunnelTimeout = 30 * sim.Second
	}
	if c.RendezvousPulsePeriod <= 0 {
		c.RendezvousPulsePeriod = 15 * sim.Second
	}
	if c.BrokerTimeout <= 0 {
		c.BrokerTimeout = 3 * c.RendezvousPulsePeriod
	}
	if c.PunchTries <= 0 {
		c.PunchTries = 10
	}
	if c.PunchInterval <= 0 {
		c.PunchInterval = 200 * sim.Millisecond
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * sim.Second
	}
	if c.BridgeLatency <= 0 {
		c.BridgeLatency = 10 * sim.Microsecond
	}
	if c.PacketCost <= 0 {
		c.PacketCost = 15 * sim.Microsecond
	}
	if c.BatchMaxBytes <= 0 {
		c.BatchMaxBytes = 1500
	}
	if c.BatchMaxFrames <= 0 {
		c.BatchMaxFrames = 32
	}
	if c.FlowSlots <= 0 {
		c.FlowSlots = defaultFlowSlots
	}
	if c.FlowSweepPeriod <= 0 {
		c.FlowSweepPeriod = 10 * sim.Second
	}
	if c.FlowIdle <= 0 {
		c.FlowIdle = 30 * sim.Second
	}
	return c
}

// connWaiter is one pending tunnel-establishment callback.
type connWaiter struct {
	id uint64
	fn func()
}

// Tunnel is one host-to-host connection: usually a direct punched path,
// or — for NAT pairs hole punching cannot traverse — a channel relayed
// through the rendezvous server.
type Tunnel struct {
	host        *Host
	Peer        string
	Remote      netsim.Addr
	established bool
	lastHeard   sim.Time
	pulser      *sim.Ticker

	// Relayed marks a broker-relayed tunnel; Remote is then the relay
	// address and every packet carries the relay envelope.
	Relayed   bool
	relayChan uint64

	// remoteVNIs is the far end's announced segment set; vniKnown marks
	// that at least one announcement arrived (until then the host floods
	// conservatively). Used by VNI-aware flood suppression.
	remoteVNIs map[uint32]bool
	vniKnown   bool
	// announcedGen / sinceAnnounce gate re-announcing OUR segment set on
	// this tunnel: immediately when the set changed, else only as a slow
	// periodic refresh against lost announcements.
	announcedGen  uint64
	sinceAnnounce int

	// quotas are the per-tenant token buckets metering this tunnel.
	quotas map[string]*tokenBucket

	// egress is this destination's pending batch (batch.go): relay
	// headroom, the paFrameBatch type byte, then length-prefixed frame
	// images appended in admission order. egressFrames counts them;
	// egressQueued marks the tunnel as already on the host's flush
	// list. The buffer's ownership transfers to the network at flush.
	egress       []byte
	egressFrames int
	egressQueued bool

	// Stats.
	FramesOut, FramesIn   uint64
	BytesOut, BytesIn     uint64
	PulsesOut, PulsesIn   uint64
	QuotaDrops            uint64
	BatchesOut, BatchesIn uint64
}

// CarriesVNI reports whether the far end announced a segment for vni
// (false also when no announcement has arrived yet).
func (t *Tunnel) CarriesVNI(vni uint32) bool { return t.vniKnown && t.remoteVNIs[vni] }

// Established reports whether hole punching (or relay setup) completed.
func (t *Tunnel) Established() bool { return t.established }

// segment is one virtual network's local attachment point: a dedicated
// software bridge plus the tap through which the WAV-Switch picks up
// and injects that network's frames. Segment 0 is the default (legacy,
// untagged) virtual LAN; every VPC a host participates in gets its own
// segment, so broadcast and ARP flooding is scoped per tenant.
type segment struct {
	vni    uint32
	bridge *ether.Bridge
	tap    *ether.BridgePort
	dom0   *ipstack.Stack
	// flood / suppress are pre-resolved handles into the host's per-VNI
	// counter set, so the flood path bumps them with one atomic add
	// instead of a string-keyed locked map probe.
	flood    *uint64
	suppress *uint64
}

// Host is a WAVNet participant.
type Host struct {
	name string
	phys *netsim.Host
	eng  *sim.Engine
	cfg  Config

	sock *netsim.UDPSocket

	// segments are the per-VNI virtual LAN attachments (bridge + tap);
	// segment 0 always exists and is the default network.
	segments map[uint32]*segment
	// network/vni scope the host's rendezvous registration and
	// discovery to one tenant (empty/0 = the default network).
	network string
	vni     uint32

	wswitch *ether.VNITable[*Tunnel]
	tunnels map[string]*Tunnel
	byAddr  map[netsim.Addr]*Tunnel
	byChan  map[uint64]*Tunnel // relayed tunnels keyed by channel id

	// peering is the inter-VNI gateway policy: which foreign tags may be
	// re-injected into which local segments, for which destinations.
	peering *ether.PeeringTable
	// floodAll disables VNI-aware flood suppression (the seed behaviour:
	// tagged broadcast floods every tunnel and dies at the receiver's
	// isolation check). Tests and experiments use it to exercise the
	// receiver-side check in isolation.
	floodAll bool

	// vniTenant / tenantQuota configure per-tenant send-rate metering
	// (see quota.go); buckets live on the tunnels.
	vniTenant   map[uint32]string
	tenantQuota map[string]QuotaConfig

	// vniGen counts segment-set changes; tunnels compare it against
	// their announcedGen to decide whether a refresh is due.
	vniGen uint64

	// vips is the per-VNI service steering table (vip.go): VIP →
	// preference-ordered backend list, consulted by the proxy-ARP
	// responder on the tap path. vipRecords remembers the rendezvous
	// VIP records this host announced, re-asserted after re-home and
	// re-registration.
	vips       map[uint32]map[netsim.IP]*vipTableEntry
	vipRecords map[string]rendezvous.VIPRecord

	rdv      netsim.Addr
	joined   bool
	natClass stun.NATClass
	mapped   netsim.Addr
	rdvTick  *sim.Ticker

	// Broker failover state: the candidate broker set kept from join
	// time (JoinAny) or pushed by the reconciler (NetworkSpec.Brokers),
	// the brokers the last JoinAny-style election actually attempted,
	// when the home broker was last heard, and whether a re-home or
	// re-register is already in flight.
	candidates   []netsim.Addr
	joinAttempts []netsim.Addr
	brokerSeen   sim.Time
	recovering   bool

	nextID   uint64
	waiters  map[uint64]func(*rendezvous.Msg)
	stunWait func(*stun.Message)
	// connWaiters fire when a tunnel to the named peer establishes;
	// entries carry an ID so a ConnectTo that gives up can remove
	// exactly its own waiter.
	connWaiters map[string][]connWaiter
	echoWaiters map[uint64]func(sim.Duration)
	nextEcho    uint64

	vifSeq uint32
	macSeq uint32

	// Stats.
	FramesSent, FramesRecv   uint64
	FloodedFrames            uint64
	PunchesSent, PunchesRecv uint64
	// CrossVNIDrops counts frames that arrived tagged with a VNI this
	// host has no segment for — traffic from another tenant that the
	// isolation check discarded.
	CrossVNIDrops uint64
	// SuppressedFloods counts flooded frames NOT sent because the far
	// end announced it has no segment (and no peering route) for the tag.
	SuppressedFloods uint64
	// PeeredForwards / PeerPolicyDrops count the inter-VNI gateway's
	// decisions: foreign-tagged frames re-injected into a peered local
	// segment, and frames a peering existed for but whose destination
	// the policy refused.
	PeeredForwards  uint64
	PeerPolicyDrops uint64
	// QuotaDrops counts outbound frames dropped by per-tenant metering.
	QuotaDrops uint64
	// Rehomes counts successful migrations to another broker after the
	// home broker went silent; RehomeFailures counts elections that
	// found no live candidate (retried on the next pulse tick);
	// Reregisters counts re-joins to the SAME broker after it answered
	// a pulse with "unknown session" (broker restarted, state lost).
	Rehomes        uint64
	RehomeFailures uint64
	Reregisters    uint64
	// Service-VIP stats (vip.go): ARP requests answered from the
	// steering table, gratuitous ARPs injected on a choice change, and
	// 0x19 health announcements flooded/applied.
	VIPARPProxied   uint64
	VIPSteers       uint64
	VIPAnnouncesOut uint64
	VIPAnnouncesIn  uint64
	// vniCounters breaks floods and suppressions down per virtual
	// network ("flood.vni<N>" / "suppress.vni<N>"); the data path bumps
	// pre-resolved handles cached on each segment (see segment).
	vniCounters *metrics.CounterSet
	// floodScratch is the reusable tunnel ordering of sortedTunnels.
	floodScratch []*Tunnel

	// Egress batcher state (batch.go): destinations with pending
	// frames in enqueue order (= deterministic flood order), whether
	// the end-of-timestamp flush hook is already registered for the
	// current instant, and the cached hook closure (allocated once).
	pendingFlush []*Tunnel
	flushHooked  bool
	flushFn      func()
	// BatchFlushes counts flushed batches, BatchCapFlushes the subset
	// forced early by a byte/frame cap, BatchedFrames the frames they
	// carried; batchSizes is the frames-per-batch distribution.
	BatchFlushes    uint64
	BatchCapFlushes uint64
	BatchedFrames   uint64
	batchSizes      *obs.Histogram

	// Flow accounting (flow.go): the fixed-size table the encap/decap/
	// drop sites charge inline, a reused key scratch (single writer: the
	// sim event loop), a reused decode frame for wire-drop attribution,
	// and the self-arming eviction sweep's state.
	flows       *FlowTable
	flowScratch FlowKey
	dropScratch ether.Frame
	flowSweepOn bool
	flowSweepFn func()
}

// NewHost creates a WAVNet host on a physical machine. The bridge, tap
// and WAV-Switch are wired immediately; Join connects the control plane.
func NewHost(phys *netsim.Host, name string, cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	h := &Host{
		name:        name,
		phys:        phys,
		eng:         phys.Engine(),
		cfg:         cfg,
		segments:    make(map[uint32]*segment),
		tunnels:     make(map[string]*Tunnel),
		byAddr:      make(map[netsim.Addr]*Tunnel),
		byChan:      make(map[uint64]*Tunnel),
		waiters:     make(map[uint64]func(*rendezvous.Msg)),
		connWaiters: make(map[string][]connWaiter),
		echoWaiters: make(map[uint64]func(sim.Duration)),
		peering:     ether.NewPeeringTable(),
		vniTenant:   make(map[uint32]string),
		tenantQuota: make(map[string]QuotaConfig),
		vniCounters: metrics.NewCounterSet(),
		vips:        make(map[uint32]map[netsim.IP]*vipTableEntry),
		vipRecords:  make(map[string]rendezvous.VIPRecord),
		batchSizes:  obs.NewHistogram(),
	}
	h.flushFn = h.flushEgress
	h.flows = NewFlowTable(cfg.FlowSlots)
	h.flowSweepFn = h.flowSweep
	sock, err := phys.BindUDP(cfg.Port, h.onPacket)
	if err != nil {
		return nil, err
	}
	h.sock = sock
	h.wswitch = ether.NewVNITable[*Tunnel](h.eng, 0)
	h.addSegment(0)
	return h, nil
}

// addSegment wires the bridge and tap of one virtual network.
func (h *Host) addSegment(vni uint32) *segment {
	suffix := ""
	if vni != 0 {
		suffix = fmt.Sprintf(".%d", vni)
	}
	seg := &segment{vni: vni}
	seg.flood = h.vniCounters.Handle(fmt.Sprintf("flood.vni%d", vni))
	seg.suppress = h.vniCounters.Handle(fmt.Sprintf("suppress.vni%d", vni))
	seg.bridge = ether.NewBridge(h.eng, h.name+"-br0"+suffix, h.cfg.BridgeLatency)
	seg.tap = seg.bridge.AddPort("wav0" + suffix)
	seg.tap.SetRecv(func(f *ether.Frame) { h.onTapFrame(seg, f) })
	h.segments[vni] = seg
	return seg
}

// JoinVNI attaches the host to a virtual network's data plane: it
// creates the VNI's local bridge segment (idempotently) so tagged
// frames for that network are accepted and switched. Rendezvous-layer
// scoping is handled separately by JoinVPC.
func (h *Host) JoinVNI(vni uint32) *ether.Bridge {
	seg, ok := h.segments[vni]
	if !ok {
		seg = h.addSegment(vni)
		h.announceVNIs()
	}
	return seg.bridge
}

// LeaveVNI detaches the host from a non-default virtual network: the
// segment is dropped, its switch state is flushed, and subsequent
// frames tagged with the VNI are discarded by the isolation check.
func (h *Host) LeaveVNI(vni uint32) {
	if vni == 0 {
		return // the default segment is permanent
	}
	delete(h.segments, vni)
	h.wswitch.DropVNI(vni)
	h.announceVNIs()
}

// SegmentBridge returns the bridge of one virtual network segment.
func (h *Host) SegmentBridge(vni uint32) (*ether.Bridge, bool) {
	seg, ok := h.segments[vni]
	if !ok {
		return nil, false
	}
	return seg.bridge, true
}

// VNIs returns the virtual networks this host has segments for, sorted.
func (h *Host) VNIs() []uint32 {
	out := make([]uint32, 0, len(h.segments))
	for vni := range h.segments {
		out = append(out, vni)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Name returns the host's WAVNet name.
func (h *Host) Name() string { return h.name }

// Phys returns the underlying physical machine.
func (h *Host) Phys() *netsim.Host { return h.phys }

// Bridge returns the host's default-network software bridge.
func (h *Host) Bridge() *ether.Bridge { return h.segments[0].bridge }

// Network reports the host's tenant scope: the virtual network name
// and VNI its rendezvous registration is scoped to ("" and 0 before
// JoinVPC).
func (h *Host) Network() (string, uint32) { return h.network, h.vni }

// Joined reports whether the host currently holds a rendezvous session.
func (h *Host) Joined() bool { return h.joined }

// RendezvousAddr reports the home broker this host registered with. A
// host homes on exactly one broker of a federation — its record is
// replicated to the other brokers its network names, and connects to
// hosts homed elsewhere are forwarded broker-to-broker.
func (h *Host) RendezvousAddr() netsim.Addr { return h.rdv }

// NATClass reports the STUN classification from Join.
func (h *Host) NATClass() stun.NATClass { return h.natClass }

// Mapped reports the external address of the WAVNet socket as observed
// during Join.
func (h *Host) Mapped() netsim.Addr { return h.mapped }

// Tunnels returns the current tunnel set keyed by peer name.
func (h *Host) Tunnels() map[string]*Tunnel {
	out := make(map[string]*Tunnel, len(h.tunnels))
	for k, v := range h.tunnels {
		out[k] = v
	}
	return out
}

// Tunnel returns the tunnel to a peer, if established.
func (h *Host) Tunnel(peer string) (*Tunnel, bool) {
	t, ok := h.tunnels[peer]
	return t, ok
}

// VirtualMTU is the MTU usable on the default virtual LAN: the physical
// UDP payload budget minus Packet Assembler, relay envelope and Ethernet
// header overhead. The relay envelope is reserved even on direct
// tunnels so every host on a virtual LAN agrees on one MTU.
func (h *Host) VirtualMTU() int {
	return 1472 - 1 - rendezvous.RelayHeaderLen - ether.HeaderLen
}

// SegmentMTU is the MTU usable within one virtual network: tagged
// segments pay the VNI tag on the wire, so every member of a VPC
// agrees on a slightly smaller MTU than the default network's.
func (h *Host) SegmentMTU(vni uint32) int {
	if vni == 0 {
		return h.VirtualMTU()
	}
	return h.VirtualMTU() - VNITagLen
}

// ---- NIC plumbing for stacks and VMs ----

// AttachVIF adds a port to the host's default-network bridge (for a
// VM's virtual NIC or an extra local stack) and returns it.
func (h *Host) AttachVIF(name string) ether.NIC {
	return h.segments[0].bridge.AddPort(name)
}

// AttachVIFOn adds a port to the bridge of one virtual network segment
// (the host must have joined the VNI first).
func (h *Host) AttachVIFOn(vni uint32, name string) (ether.NIC, error) {
	seg, ok := h.segments[vni]
	if !ok {
		return nil, fmt.Errorf("core: %s has no segment for VNI %d", h.name, vni)
	}
	return seg.bridge.AddPort(name), nil
}

// DetachVIF unplugs a previously attached port from whichever bridge
// holds it.
func (h *Host) DetachVIF(nic ether.NIC) {
	if p, ok := nic.(*ether.BridgePort); ok {
		p.Bridge().RemovePort(p)
	}
}

// CreateDom0 attaches the host's own virtual stack (the management
// domain of Figure 5) to the default bridge with the given virtual IP.
func (h *Host) CreateDom0(ip netsim.IP) *ipstack.Stack {
	st, _ := h.CreateDom0On(0, ip)
	return st
}

// CreateDom0On attaches a per-network management stack to the given
// VNI's segment. Each segment holds at most one dom0.
func (h *Host) CreateDom0On(vni uint32, ip netsim.IP) (*ipstack.Stack, error) {
	seg, ok := h.segments[vni]
	if !ok {
		return nil, fmt.Errorf("core: %s has no segment for VNI %d", h.name, vni)
	}
	name := "vnet0"
	stackName := h.name + "-dom0"
	if vni != 0 {
		name = fmt.Sprintf("vnet0.%d", vni)
		stackName = fmt.Sprintf("%s-dom0.%d", h.name, vni)
	}
	h.macSeq++
	nic := seg.bridge.AddPort(name)
	seg.dom0 = ipstack.New(h.eng, stackName, nic, h.newMAC(), ip,
		ipstack.Config{MTU: h.SegmentMTU(vni)})
	return seg.dom0, nil
}

// Dom0 returns the host's default-network management stack (nil before
// CreateDom0).
func (h *Host) Dom0() *ipstack.Stack { return h.segments[0].dom0 }

// Dom0On returns the per-network management stack of one segment.
func (h *Host) Dom0On(vni uint32) *ipstack.Stack {
	if seg, ok := h.segments[vni]; ok {
		return seg.dom0
	}
	return nil
}

// NewMAC hands out deterministic unique MACs for VMs on this host.
func (h *Host) NewMAC() ether.MAC { return h.newMAC() }

func (h *Host) newMAC() ether.MAC {
	h.macSeq++
	// Derive from the host name: physical IPs are not unique across
	// NATed LANs (every site can use 192.168.0.2).
	var hash uint32 = 2166136261
	for i := 0; i < len(h.name); i++ {
		hash ^= uint32(h.name[i])
		hash *= 16777619
	}
	return ether.MAC{0x02, 0x57, byte(hash >> 24), byte(hash >> 16), byte(hash >> 8), byte(h.macSeq)}
}

// ---- control plane ----

func (h *Host) newWaiter(fn func(*rendezvous.Msg)) uint64 {
	h.nextID++
	id := h.nextID
	h.waiters[id] = fn
	return id
}

// rpc sends a rendezvous message and blocks until the matching reply or
// the RPC timeout.
func (h *Host) rpc(p *sim.Proc, m *rendezvous.Msg) (*rendezvous.Msg, error) {
	var resp *rendezvous.Msg
	done := false
	id := h.newWaiter(func(r *rendezvous.Msg) {
		resp = r
		done = true
		p.Unpark()
	})
	m.ID = id
	h.sock.SendTo(h.rdv, rendezvous.Encode(m))
	timer := sim.NewTimer(h.eng, func() {
		if _, live := h.waiters[id]; live {
			delete(h.waiters, id)
			done = true
			p.Unpark()
		}
	})
	timer.Reset(h.cfg.RPCTimeout)
	for !done {
		if !p.Park() {
			// Interrupted: hand the stop request back to the caller
			// instead of re-parking over it.
			delete(h.waiters, id)
			timer.Stop()
			return nil, ErrInterrupted
		}
	}
	timer.Stop()
	if resp == nil {
		return nil, ErrTimeout
	}
	if resp.Kind == "error" || resp.Error != "" {
		return nil, fmt.Errorf("core: rendezvous: %s", resp.Error)
	}
	return resp, nil
}

// Join registers the host with a rendezvous server: STUN classification,
// external-mapping discovery on the WAVNet socket, broker registration
// and the keepalive session.
func (h *Host) Join(p *sim.Proc, rdv netsim.Addr) error {
	h.rdv = rdv
	stunAddr := netsim.Addr{IP: rdv.IP, Port: 3478}

	// 1. Classify the NAT in front of us (dedicated socket; the NAT type
	// is a property of the gateway, not of the socket).
	res, err := stun.Classify(p, h.phys, stunAddr, stun.Config{})
	if err != nil {
		return fmt.Errorf("core: STUN classify: %w", err)
	}
	h.natClass = res.Class

	// 2. Learn the WAVNet socket's own external mapping: a binding
	// request from the main socket (cone NATs map per local endpoint).
	mapped, err := h.bindingRequest(p, stunAddr)
	if err != nil {
		return fmt.Errorf("core: STUN binding: %w", err)
	}
	h.mapped = mapped

	// 3. Register with the broker.
	rec := h.record()
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "join", Rec: &rec})
	if err != nil {
		return err
	}
	if resp.Rec != nil {
		h.mapped = resp.Rec.Mapped
	}
	h.joined = true
	h.brokerSeen = h.eng.Now()

	// 4. Keep the broker session (and its NAT mapping) alive, and watch
	// for home-broker silence: the broker acks every pulse, so a quiet
	// period longer than BrokerTimeout means it is gone and the host
	// must re-home onto a surviving candidate.
	if h.rdvTick != nil {
		h.rdvTick.Stop()
	}
	h.rdvTick = sim.NewTicker(h.eng, h.cfg.RendezvousPulsePeriod, func() {
		h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{Kind: "pulse", Name: h.name}))
		h.checkBrokerLiveness()
	})
	return nil
}

// checkBrokerLiveness triggers re-homing when the home broker has been
// silent past BrokerTimeout and the host knows at least one other
// candidate broker to elect.
func (h *Host) checkBrokerLiveness() {
	if !h.joined || h.recovering {
		return
	}
	if h.eng.Now().Sub(h.brokerSeen) <= h.cfg.BrokerTimeout {
		return
	}
	if len(h.survivors(h.rdv)) == 0 {
		return
	}
	h.recovering = true
	h.eng.Spawn("rehome-"+h.name, func(p *sim.Proc) {
		defer func() { h.recovering = false }()
		h.rehome(p)
	})
}

// survivors is the candidate set minus one (dead) broker.
func (h *Host) survivors(dead netsim.Addr) []netsim.Addr {
	out := make([]netsim.Addr, 0, len(h.candidates))
	for _, a := range h.candidates {
		if a != dead {
			out = append(out, a)
		}
	}
	return out
}

// rehome runs the failover election: a JoinAny-style pass over the
// surviving candidates — the broker just declared dead is excluded, not
// retried — then re-registers under the host's current network scope.
// The new home broker replicates the fresh record across the network's
// broker set, which supersedes the stale replicas naming the dead
// broker. Established tunnels are untouched: the data plane never
// needed the broker. On failure (no live candidate either) the host is
// re-pointed at the broker it declared dead, so the next pulse tick's
// election keeps excluding exactly that broker instead of whichever
// survivor happened to fail last.
func (h *Host) rehome(p *sim.Proc) error {
	sp := h.cfg.Tracer.Start(nil, "rehome", obs.Labels{Host: h.name, Net: h.network})
	defer sp.End()
	dead := h.rdv
	sp.Event("broker %v silent %v", dead, h.BrokerSilence())
	cands := h.survivors(dead)
	if len(cands) == 0 {
		h.RehomeFailures++
		sp.Event("no surviving candidate")
		return ErrUnreachable
	}
	if err := h.electAndJoin(p, cands); err != nil {
		// Join pointed h.rdv at each candidate it tried; restore the old
		// home so pulses and the next election still target the broker
		// actually declared dead.
		h.rdv = dead
		h.RehomeFailures++
		sp.Event("election failed: %v", err)
		return err
	}
	h.Rehomes++
	sp.Event("rehomed to %v", h.rdv)
	// The new home broker has never heard of our service VIPs; its
	// replication then supersedes the stale records naming the dead one.
	h.reannounceVIPRecords()
	return nil
}

// reregister re-joins the current home broker after it reported our
// session unknown (it restarted and lost state). The scope (network,
// VNI, attributes) rides along in the registration record.
func (h *Host) reregister() {
	if !h.joined || h.recovering {
		return
	}
	h.recovering = true
	h.eng.Spawn("reregister-"+h.name, func(p *sim.Proc) {
		defer func() { h.recovering = false }()
		sp := h.cfg.Tracer.Start(nil, "reregister", obs.Labels{Host: h.name, Net: h.network})
		defer sp.End()
		if err := h.Join(p, h.rdv); err == nil {
			h.Reregisters++
			sp.Event("re-registered with %v", h.rdv)
			// The restarted broker lost our VIP records with its state.
			h.reannounceVIPRecords()
		} else {
			sp.Event("re-register failed: %v", err)
		}
	})
}

// record is the host's current registration record.
func (h *Host) record() rendezvous.HostRecord {
	return rendezvous.HostRecord{
		Name:  h.name,
		NAT:   h.natClass.NATType(),
		Attrs: h.cfg.Attrs,
		Net:   h.network,
		VNI:   h.vni,
	}
}

// JoinVPC admits the host into a virtual private cloud: it joins the
// VNI's data-plane segment and re-registers with the rendezvous layer
// scoped to the network, so Lookup, GroupQuery and broker-mediated
// connects only ever see co-tenants. The host must already have joined
// a rendezvous server.
func (h *Host) JoinVPC(p *sim.Proc, network string, vni uint32) error {
	if !h.joined {
		return ErrNotJoined
	}
	_, hadSegment := h.segments[vni]
	h.JoinVNI(vni)
	prevNet, prevVNI := h.network, h.vni
	h.network, h.vni = network, vni
	rec := h.record()
	if _, err := h.rpc(p, &rendezvous.Msg{Kind: "join", Rec: &rec}); err != nil {
		// Roll the whole join back: a host whose registration failed
		// must not keep a data-plane segment that would pass the
		// isolation check for a tenant it never entered.
		h.network, h.vni = prevNet, prevVNI
		if !hadSegment {
			h.LeaveVNI(vni)
		}
		return err
	}
	return nil
}

// LeaveVPC returns the host to the default network: the rendezvous
// registration is re-scoped to the default tenant. The VNI segment is
// left to the caller (vpc.Manager.Evict drops it).
func (h *Host) LeaveVPC(p *sim.Proc) error {
	return h.JoinVPC(p, "", 0)
}

// JoinAny registers with the first reachable rendezvous server in the
// list — the paper's "sending a joining message to at least one
// rendezvous server". Servers are tried in order; a dead broker costs
// one STUN/RPC timeout before the next is attempted. The list becomes
// the host's standing candidate set for broker failover, and every
// address actually attempted (in order, the winner last) is recorded in
// JoinAttempts so a later re-home election can see — and skip — brokers
// that were already found dead.
func (h *Host) JoinAny(p *sim.Proc, rdvs []netsim.Addr) error {
	h.candidates = append([]netsim.Addr(nil), rdvs...)
	return h.electAndJoin(p, rdvs)
}

// electAndJoin is the election loop shared by JoinAny and rehome: it
// records the attempted brokers but deliberately leaves the standing
// candidate set alone, so a reconciler push (SetBrokerCandidates)
// landing while an election is parked in simulated time is never
// clobbered by a stale snapshot.
func (h *Host) electAndJoin(p *sim.Proc, rdvs []netsim.Addr) error {
	h.joinAttempts = h.joinAttempts[:0]
	var lastErr error = ErrUnreachable
	for _, addr := range rdvs {
		h.joinAttempts = append(h.joinAttempts, addr)
		if err := h.Join(p, addr); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// JoinAttempts returns the brokers the last JoinAny election attempted,
// in order; the final entry is the one that answered (or the last
// failure when the whole election failed).
func (h *Host) JoinAttempts() []netsim.Addr {
	return append([]netsim.Addr(nil), h.joinAttempts...)
}

// SetBrokerCandidates installs the standing broker candidate set used
// for failover — the reconciler pushes the addresses of the network's
// declared broker set (NetworkSpec.Brokers) here on every Apply, so
// re-homing respects the tenant's federation scope.
func (h *Host) SetBrokerCandidates(addrs []netsim.Addr) {
	h.candidates = append([]netsim.Addr(nil), addrs...)
}

// BrokerCandidates returns the standing failover candidate set.
func (h *Host) BrokerCandidates() []netsim.Addr {
	return append([]netsim.Addr(nil), h.candidates...)
}

// BrokerSilence reports how long ago the home broker was last heard.
func (h *Host) BrokerSilence() sim.Duration { return h.eng.Now().Sub(h.brokerSeen) }

// stun binding request over the main socket.
func (h *Host) bindingRequest(p *sim.Proc, server netsim.Addr) (netsim.Addr, error) {
	for try := 0; try < 3; try++ {
		var got netsim.Addr
		done := false
		h.stunWait = func(m *stun.Message) {
			got = m.Mapped
			done = true
			p.Unpark()
		}
		req := &stun.Message{Type: stun.TypeBindingRequest}
		req.TxID[0] = byte(try + 1)
		h.sock.SendTo(server, req.Marshal())
		timer := sim.NewTimer(h.eng, func() {
			if !done {
				done = true
				p.Unpark()
			}
		})
		timer.Reset(time500ms)
		for !done {
			if !p.Park() {
				timer.Stop()
				h.stunWait = nil
				return netsim.Addr{}, ErrInterrupted
			}
		}
		timer.Stop()
		h.stunWait = nil
		if !got.IsZero() {
			return got, nil
		}
	}
	return netsim.Addr{}, ErrUnreachable
}

const time500ms = 500 * sim.Millisecond

// Lookup resolves a host record by name through the rendezvous layer.
func (h *Host) Lookup(p *sim.Proc, name string) ([]rendezvous.HostRecord, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "lookup", Name: name, Net: h.network})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// LookupAttrs queries hosts by resource-state point via the CAN.
func (h *Host) LookupAttrs(p *sim.Proc, attrs can.Point) ([]rendezvous.HostRecord, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "lookup", Attrs: attrs, Net: h.network})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// GroupQuery asks the rendezvous server's distance locator for k
// mutually-near hosts.
func (h *Host) GroupQuery(p *sim.Proc, k int) ([]string, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "group-query", Name: h.name, K: k, Net: h.network})
	if err != nil {
		return nil, err
	}
	return resp.Group, nil
}

// ReportRTTs uploads measured peer RTTs to the distance locator.
func (h *Host) ReportRTTs(rtts map[string]sim.Duration) {
	if !h.joined {
		return
	}
	m := &rendezvous.Msg{Kind: "rtt-report", Name: h.name, RTTs: make(map[string]int64, len(rtts))}
	for peer, d := range rtts {
		m.RTTs[peer] = int64(d)
	}
	h.sock.SendTo(h.rdv, rendezvous.Encode(m))
}

// ConnectTo establishes a direct tunnel to the named peer via the
// rendezvous layer and UDP hole punching, blocking until it is up.
func (h *Host) ConnectTo(p *sim.Proc, peer string) (*Tunnel, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	if t, ok := h.tunnels[peer]; ok && t.established {
		return t, nil
	}
	sp := h.cfg.Tracer.Start(nil, "connect", obs.Labels{Host: h.name, Net: h.network})
	defer sp.End()
	sp.Event("request %s", peer)
	// Wait for establishment triggered by the punch exchange. The
	// connect request is retried a few times: the rendezvous message or
	// punch-order can be lost under connection storms. Whatever the
	// outcome, this call's waiter never outlives it.
	done := false
	var rpcErr error
	h.nextID++
	waiterID := h.nextID
	h.connWaiters[peer] = append(h.connWaiters[peer], connWaiter{waiterID, func() {
		done = true
		p.Unpark()
	}})
	defer h.dropConnWaiter(peer, waiterID)
	attemptWindow := h.cfg.RPCTimeout/2 + sim.Duration(h.cfg.PunchTries)*h.cfg.PunchInterval
	for attempt := 0; attempt < 3 && !done; attempt++ {
		transient := false
		id := h.newWaiter(func(r *rendezvous.Msg) {
			if r.Error != "" {
				rpcErr = fmt.Errorf("core: connect: %s", r.Error)
				transient = r.Code == rendezvous.CodeNotFound
				done = true
				p.Unpark()
			}
		})
		h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{
			Kind: "connect", ID: id, Name: h.name,
			Peer: &rendezvous.HostRecord{Name: peer},
		}))
		deadline := sim.NewTimer(h.eng, func() {
			if !done {
				p.Unpark()
			}
		})
		deadline.Reset(attemptWindow)
		interrupted := false
		for !done && deadline.Active() {
			if !p.Park() {
				interrupted = true
				break
			}
		}
		deadline.Stop()
		delete(h.waiters, id)
		if interrupted {
			// A stop request (mesh-repair teardown, engine shutdown)
			// must not be swallowed by another connect attempt.
			sp.Event("interrupted")
			return nil, ErrInterrupted
		}
		if rpcErr != nil {
			// A not-found is transient in a federation: the peer may be
			// homed on another broker whose (possibly batched) record
			// replication has not reached ours yet. Back off and retry;
			// policy refusals and other errors stay immediate.
			if attempt < 2 && transient {
				sp.Event("transient not-found, retrying")
				rpcErr = nil
				done = false
				if !p.Sleep(sim.Duration(attempt+1) * 2 * sim.Second) {
					sp.Event("interrupted")
					return nil, ErrInterrupted
				}
				continue
			}
			sp.Event("refused: %v", rpcErr)
			return nil, rpcErr
		}
	}
	t, ok := h.tunnels[peer]
	if !ok || !t.established {
		sp.Event("punch failed")
		return nil, ErrPunchFailed
	}
	if t.Relayed {
		sp.Event("established %s (relayed)", peer)
	} else {
		sp.Event("established %s at %v", peer, t.Remote)
	}
	return t, nil
}

// dropConnWaiter removes one pending establishment callback (no-op when
// establishment already consumed the whole list).
func (h *Host) dropConnWaiter(peer string, id uint64) {
	ws := h.connWaiters[peer]
	for i, w := range ws {
		if w.id == id {
			ws = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(ws) == 0 {
		delete(h.connWaiters, peer)
		return
	}
	h.connWaiters[peer] = ws
}

// Disconnect tears down the tunnel to a peer.
func (h *Host) Disconnect(peer string) {
	t, ok := h.tunnels[peer]
	if !ok {
		return
	}
	h.dropTunnel(t)
}

func (h *Host) dropTunnel(t *Tunnel) {
	if t.pulser != nil {
		t.pulser.Stop()
	}
	delete(h.tunnels, t.Peer)
	// Relayed tunnels share the relay's address; only unmap our own.
	if cur, ok := h.byAddr[t.Remote]; ok && cur == t {
		delete(h.byAddr, t.Remote)
	}
	if t.relayChan != 0 {
		delete(h.byChan, t.relayChan)
	}
	// Abandon any pending egress: the peer is gone. The tunnel may
	// still sit on pendingFlush; the flush skips empty queues.
	t.egress = nil
	t.egressFrames = 0
	h.wswitch.ForgetPort(t)
}

// Leave shuts down the host's WAVNet participation.
func (h *Host) Leave() {
	for _, t := range h.Tunnels() {
		h.dropTunnel(t)
	}
	if h.rdvTick != nil {
		h.rdvTick.Stop()
		h.rdvTick = nil
	}
	h.DrainFlows()
	h.joined = false
}
