// Package core implements the WAVNet host: the paper's primary
// contribution. A Host owns one physical UDP socket over which it
// multiplexes (1) rendezvous-layer control traffic, (2) STUN binding
// requests, (3) UDP hole punching, and (4) the Packet Assembler's
// encapsulated Ethernet frames and CONNECT_PULSE keepalives.
//
// Locally the host runs a software bridge; WAVNet attaches to it through
// a tap port. Frames leaving the bridge through the tap are encapsulated
// and switched onto direct host-to-host tunnels by the WAV-Switch (a MAC
// learning table whose ports are wide-area tunnels); frames arriving
// from tunnels are injected back through the tap. VMs and the host's own
// virtual stack plug into the same bridge, which is what makes gratuitous
// ARP after live migration propagate to every connected host.
package core

import (
	"errors"
	"fmt"

	"wavnet/internal/can"
	"wavnet/internal/ether"
	"wavnet/internal/ipstack"
	"wavnet/internal/netsim"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// Packet Assembler type identifiers (first payload byte). They are
// chosen to collide with neither STUN (0x00/0x01 first byte) nor JSON
// ('{' = 0x7B) so one socket can carry everything.
const (
	paPulse    = 0x10 // CONNECT_PULSE: 2-byte keepalive
	paFrame    = 0x11 // encapsulated Ethernet frame
	paPunch    = 0x12 // hole punching probe
	paPunchAck = 0x13 // hole punching acknowledgement
	paEcho     = 0x14 // tunnel RTT probe
	paEchoResp = 0x15 // tunnel RTT response
)

// Errors returned by Host operations.
var (
	ErrNotJoined    = errors.New("core: host has not joined a rendezvous server")
	ErrPunchFailed  = errors.New("core: hole punching failed")
	ErrTimeout      = errors.New("core: operation timed out")
	ErrUnreachable  = errors.New("core: rendezvous server unreachable")
	ErrNoSuchTunnel = errors.New("core: no tunnel to peer")
)

// Config tunes a WAVNet host.
type Config struct {
	Port uint16 // WAVNet UDP port (default 4500)

	// PulsePeriod is the CONNECT_PULSE interval on established tunnels;
	// the paper uses 5 s against NAT timeouts of minutes.
	PulsePeriod sim.Duration
	// TunnelTimeout declares a tunnel dead with no inbound traffic.
	TunnelTimeout sim.Duration
	// RendezvousPulsePeriod keeps the broker session (and its NAT
	// mapping) alive.
	RendezvousPulsePeriod sim.Duration

	PunchTries    int
	PunchInterval sim.Duration

	// RPCTimeout bounds control-plane waits (join, lookup, connect).
	RPCTimeout sim.Duration

	// Attrs is the host's resource state vector for CAN-indexed queries.
	Attrs can.Point

	// BridgeLatency is the software bridge's per-frame forwarding cost.
	BridgeLatency sim.Duration
	// PacketCost is the Packet Assembler's per-packet processing time on
	// both encapsulation and decapsulation (user-level tap handling).
	PacketCost sim.Duration
}

func (c Config) withDefaults() Config {
	if c.Port == 0 {
		c.Port = 4500
	}
	if c.PulsePeriod <= 0 {
		c.PulsePeriod = 5 * sim.Second
	}
	if c.TunnelTimeout <= 0 {
		c.TunnelTimeout = 30 * sim.Second
	}
	if c.RendezvousPulsePeriod <= 0 {
		c.RendezvousPulsePeriod = 15 * sim.Second
	}
	if c.PunchTries <= 0 {
		c.PunchTries = 10
	}
	if c.PunchInterval <= 0 {
		c.PunchInterval = 200 * sim.Millisecond
	}
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 10 * sim.Second
	}
	if c.BridgeLatency <= 0 {
		c.BridgeLatency = 10 * sim.Microsecond
	}
	if c.PacketCost <= 0 {
		c.PacketCost = 15 * sim.Microsecond
	}
	return c
}

// Tunnel is one host-to-host connection: usually a direct punched path,
// or — for NAT pairs hole punching cannot traverse — a channel relayed
// through the rendezvous server.
type Tunnel struct {
	host        *Host
	Peer        string
	Remote      netsim.Addr
	established bool
	lastHeard   sim.Time
	pulser      *sim.Ticker

	// Relayed marks a broker-relayed tunnel; Remote is then the relay
	// address and every packet carries the relay envelope.
	Relayed   bool
	relayChan uint64

	// Stats.
	FramesOut, FramesIn uint64
	BytesOut, BytesIn   uint64
	PulsesOut, PulsesIn uint64
}

// Established reports whether hole punching (or relay setup) completed.
func (t *Tunnel) Established() bool { return t.established }

// Host is a WAVNet participant.
type Host struct {
	name string
	phys *netsim.Host
	eng  *sim.Engine
	cfg  Config

	sock   *netsim.UDPSocket
	bridge *ether.Bridge
	tap    *ether.BridgePort

	wswitch *ether.MACTable[*Tunnel]
	tunnels map[string]*Tunnel
	byAddr  map[netsim.Addr]*Tunnel
	byChan  map[uint64]*Tunnel // relayed tunnels keyed by channel id

	rdv      netsim.Addr
	joined   bool
	natClass stun.NATClass
	mapped   netsim.Addr
	rdvTick  *sim.Ticker

	nextID   uint64
	waiters  map[uint64]func(*rendezvous.Msg)
	stunWait func(*stun.Message)
	// connWaiters fire when a tunnel to the named peer establishes.
	connWaiters map[string][]func()
	echoWaiters map[uint64]func(sim.Duration)
	nextEcho    uint64

	dom0   *ipstack.Stack
	vifSeq uint32
	macSeq uint32

	// Stats.
	FramesSent, FramesRecv   uint64
	FloodedFrames            uint64
	PunchesSent, PunchesRecv uint64
}

// NewHost creates a WAVNet host on a physical machine. The bridge, tap
// and WAV-Switch are wired immediately; Join connects the control plane.
func NewHost(phys *netsim.Host, name string, cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	h := &Host{
		name:        name,
		phys:        phys,
		eng:         phys.Engine(),
		cfg:         cfg,
		tunnels:     make(map[string]*Tunnel),
		byAddr:      make(map[netsim.Addr]*Tunnel),
		byChan:      make(map[uint64]*Tunnel),
		waiters:     make(map[uint64]func(*rendezvous.Msg)),
		connWaiters: make(map[string][]func()),
		echoWaiters: make(map[uint64]func(sim.Duration)),
	}
	sock, err := phys.BindUDP(cfg.Port, h.onPacket)
	if err != nil {
		return nil, err
	}
	h.sock = sock
	h.bridge = ether.NewBridge(h.eng, name+"-br0", cfg.BridgeLatency)
	h.tap = h.bridge.AddPort("wav0")
	h.tap.SetRecv(h.onTapFrame)
	h.wswitch = ether.NewMACTable[*Tunnel](h.eng, 0)
	return h, nil
}

// Name returns the host's WAVNet name.
func (h *Host) Name() string { return h.name }

// Phys returns the underlying physical machine.
func (h *Host) Phys() *netsim.Host { return h.phys }

// Bridge returns the host's software bridge.
func (h *Host) Bridge() *ether.Bridge { return h.bridge }

// NATClass reports the STUN classification from Join.
func (h *Host) NATClass() stun.NATClass { return h.natClass }

// Mapped reports the external address of the WAVNet socket as observed
// during Join.
func (h *Host) Mapped() netsim.Addr { return h.mapped }

// Tunnels returns the current tunnel set keyed by peer name.
func (h *Host) Tunnels() map[string]*Tunnel {
	out := make(map[string]*Tunnel, len(h.tunnels))
	for k, v := range h.tunnels {
		out[k] = v
	}
	return out
}

// Tunnel returns the tunnel to a peer, if established.
func (h *Host) Tunnel(peer string) (*Tunnel, bool) {
	t, ok := h.tunnels[peer]
	return t, ok
}

// VirtualMTU is the MTU usable on the virtual LAN: the physical UDP
// payload budget minus Packet Assembler, relay envelope and Ethernet
// header overhead. The relay envelope is reserved even on direct
// tunnels so every host on a virtual LAN agrees on one MTU.
func (h *Host) VirtualMTU() int {
	return 1472 - 1 - rendezvous.RelayHeaderLen - ether.HeaderLen
}

// ---- NIC plumbing for stacks and VMs ----

// AttachVIF adds a port to the host bridge (for a VM's virtual NIC or an
// extra local stack) and returns it.
func (h *Host) AttachVIF(name string) ether.NIC {
	return h.bridge.AddPort(name)
}

// DetachVIF unplugs a previously attached port.
func (h *Host) DetachVIF(nic ether.NIC) {
	if p, ok := nic.(*ether.BridgePort); ok {
		h.bridge.RemovePort(p)
	}
}

// CreateDom0 attaches the host's own virtual stack (the management
// domain of Figure 5) to the bridge with the given virtual IP.
func (h *Host) CreateDom0(ip netsim.IP) *ipstack.Stack {
	h.macSeq++
	nic := h.AttachVIF("vnet0")
	h.dom0 = ipstack.New(h.eng, h.name+"-dom0", nic, h.newMAC(), ip,
		ipstack.Config{MTU: h.VirtualMTU()})
	return h.dom0
}

// Dom0 returns the host's management stack (nil before CreateDom0).
func (h *Host) Dom0() *ipstack.Stack { return h.dom0 }

// NewMAC hands out deterministic unique MACs for VMs on this host.
func (h *Host) NewMAC() ether.MAC { return h.newMAC() }

func (h *Host) newMAC() ether.MAC {
	h.macSeq++
	// Derive from the host name: physical IPs are not unique across
	// NATed LANs (every site can use 192.168.0.2).
	var hash uint32 = 2166136261
	for i := 0; i < len(h.name); i++ {
		hash ^= uint32(h.name[i])
		hash *= 16777619
	}
	return ether.MAC{0x02, 0x57, byte(hash >> 24), byte(hash >> 16), byte(hash >> 8), byte(h.macSeq)}
}

// ---- control plane ----

func (h *Host) newWaiter(fn func(*rendezvous.Msg)) uint64 {
	h.nextID++
	id := h.nextID
	h.waiters[id] = fn
	return id
}

// rpc sends a rendezvous message and blocks until the matching reply or
// the RPC timeout.
func (h *Host) rpc(p *sim.Proc, m *rendezvous.Msg) (*rendezvous.Msg, error) {
	var resp *rendezvous.Msg
	done := false
	id := h.newWaiter(func(r *rendezvous.Msg) {
		resp = r
		done = true
		p.Unpark()
	})
	m.ID = id
	h.sock.SendTo(h.rdv, rendezvous.Encode(m))
	timer := sim.NewTimer(h.eng, func() {
		if _, live := h.waiters[id]; live {
			delete(h.waiters, id)
			done = true
			p.Unpark()
		}
	})
	timer.Reset(h.cfg.RPCTimeout)
	for !done {
		p.Park()
	}
	timer.Stop()
	if resp == nil {
		return nil, ErrTimeout
	}
	if resp.Kind == "error" || resp.Error != "" {
		return nil, fmt.Errorf("core: rendezvous: %s", resp.Error)
	}
	return resp, nil
}

// Join registers the host with a rendezvous server: STUN classification,
// external-mapping discovery on the WAVNet socket, broker registration
// and the keepalive session.
func (h *Host) Join(p *sim.Proc, rdv netsim.Addr) error {
	h.rdv = rdv
	stunAddr := netsim.Addr{IP: rdv.IP, Port: 3478}

	// 1. Classify the NAT in front of us (dedicated socket; the NAT type
	// is a property of the gateway, not of the socket).
	res, err := stun.Classify(p, h.phys, stunAddr, stun.Config{})
	if err != nil {
		return fmt.Errorf("core: STUN classify: %w", err)
	}
	h.natClass = res.Class

	// 2. Learn the WAVNet socket's own external mapping: a binding
	// request from the main socket (cone NATs map per local endpoint).
	mapped, err := h.bindingRequest(p, stunAddr)
	if err != nil {
		return fmt.Errorf("core: STUN binding: %w", err)
	}
	h.mapped = mapped

	// 3. Register with the broker.
	rec := rendezvous.HostRecord{
		Name:  h.name,
		NAT:   h.natClass.NATType(),
		Attrs: h.cfg.Attrs,
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "join", Rec: &rec})
	if err != nil {
		return err
	}
	if resp.Rec != nil {
		h.mapped = resp.Rec.Mapped
	}
	h.joined = true

	// 4. Keep the broker session (and its NAT mapping) alive.
	if h.rdvTick != nil {
		h.rdvTick.Stop()
	}
	h.rdvTick = sim.NewTicker(h.eng, h.cfg.RendezvousPulsePeriod, func() {
		h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{Kind: "pulse", Name: h.name}))
	})
	return nil
}

// JoinAny registers with the first reachable rendezvous server in the
// list — the paper's "sending a joining message to at least one
// rendezvous server". Servers are tried in order; a dead broker costs
// one STUN/RPC timeout before the next is attempted.
func (h *Host) JoinAny(p *sim.Proc, rdvs []netsim.Addr) error {
	var lastErr error = ErrUnreachable
	for _, addr := range rdvs {
		if err := h.Join(p, addr); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// stun binding request over the main socket.
func (h *Host) bindingRequest(p *sim.Proc, server netsim.Addr) (netsim.Addr, error) {
	for try := 0; try < 3; try++ {
		var got netsim.Addr
		done := false
		h.stunWait = func(m *stun.Message) {
			got = m.Mapped
			done = true
			p.Unpark()
		}
		req := &stun.Message{Type: stun.TypeBindingRequest}
		req.TxID[0] = byte(try + 1)
		h.sock.SendTo(server, req.Marshal())
		timer := sim.NewTimer(h.eng, func() {
			if !done {
				done = true
				p.Unpark()
			}
		})
		timer.Reset(time500ms)
		for !done {
			p.Park()
		}
		timer.Stop()
		h.stunWait = nil
		if !got.IsZero() {
			return got, nil
		}
	}
	return netsim.Addr{}, ErrUnreachable
}

const time500ms = 500 * sim.Millisecond

// Lookup resolves a host record by name through the rendezvous layer.
func (h *Host) Lookup(p *sim.Proc, name string) ([]rendezvous.HostRecord, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "lookup", Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// LookupAttrs queries hosts by resource-state point via the CAN.
func (h *Host) LookupAttrs(p *sim.Proc, attrs can.Point) ([]rendezvous.HostRecord, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "lookup", Attrs: attrs})
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// GroupQuery asks the rendezvous server's distance locator for k
// mutually-near hosts.
func (h *Host) GroupQuery(p *sim.Proc, k int) ([]string, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{Kind: "group-query", Name: h.name, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Group, nil
}

// ReportRTTs uploads measured peer RTTs to the distance locator.
func (h *Host) ReportRTTs(rtts map[string]sim.Duration) {
	if !h.joined {
		return
	}
	m := &rendezvous.Msg{Kind: "rtt-report", Name: h.name, RTTs: make(map[string]int64, len(rtts))}
	for peer, d := range rtts {
		m.RTTs[peer] = int64(d)
	}
	h.sock.SendTo(h.rdv, rendezvous.Encode(m))
}

// ConnectTo establishes a direct tunnel to the named peer via the
// rendezvous layer and UDP hole punching, blocking until it is up.
func (h *Host) ConnectTo(p *sim.Proc, peer string) (*Tunnel, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	if t, ok := h.tunnels[peer]; ok && t.established {
		return t, nil
	}
	// Wait for establishment triggered by the punch exchange. The
	// connect request is retried a few times: the rendezvous message or
	// punch-order can be lost under connection storms.
	done := false
	var rpcErr error
	h.connWaiters[peer] = append(h.connWaiters[peer], func() {
		done = true
		p.Unpark()
	})
	attemptWindow := h.cfg.RPCTimeout/2 + sim.Duration(h.cfg.PunchTries)*h.cfg.PunchInterval
	for attempt := 0; attempt < 3 && !done; attempt++ {
		id := h.newWaiter(func(r *rendezvous.Msg) {
			if r.Error != "" {
				rpcErr = fmt.Errorf("core: connect: %s", r.Error)
				done = true
				p.Unpark()
			}
		})
		h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{
			Kind: "connect", ID: id, Name: h.name,
			Peer: &rendezvous.HostRecord{Name: peer},
		}))
		deadline := sim.NewTimer(h.eng, func() {
			if !done {
				p.Unpark()
			}
		})
		deadline.Reset(attemptWindow)
		for !done && deadline.Active() {
			p.Park()
		}
		deadline.Stop()
		delete(h.waiters, id)
		if rpcErr != nil {
			return nil, rpcErr
		}
	}
	if !done {
		// Remove our stale waiter so a later punch does not unpark a
		// dead process.
		h.connWaiters[peer] = nil
	}
	t, ok := h.tunnels[peer]
	if !ok || !t.established {
		return nil, ErrPunchFailed
	}
	return t, nil
}

// Disconnect tears down the tunnel to a peer.
func (h *Host) Disconnect(peer string) {
	t, ok := h.tunnels[peer]
	if !ok {
		return
	}
	h.dropTunnel(t)
}

func (h *Host) dropTunnel(t *Tunnel) {
	if t.pulser != nil {
		t.pulser.Stop()
	}
	delete(h.tunnels, t.Peer)
	// Relayed tunnels share the relay's address; only unmap our own.
	if cur, ok := h.byAddr[t.Remote]; ok && cur == t {
		delete(h.byAddr, t.Remote)
	}
	if t.relayChan != 0 {
		delete(h.byChan, t.relayChan)
	}
	h.wswitch.ForgetPort(t)
}

// Leave shuts down the host's WAVNet participation.
func (h *Host) Leave() {
	for _, t := range h.Tunnels() {
		h.dropTunnel(t)
	}
	if h.rdvTick != nil {
		h.rdvTick.Stop()
		h.rdvTick = nil
	}
	h.joined = false
}
