package core

import (
	"encoding/binary"
	"testing"

	"wavnet/internal/ether"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// The benchmarks below time the per-frame work the WAV-Switch does on
// the hot data-plane path — encapsulate, decapsulate, learn, look up —
// with and without the VNI tag, to show multi-tenancy costs ~nothing.
// They drive the scratch-reuse forms the forwarding path uses
// (AppendVNIFrame into a reused buffer, UnmarshalVNIFrameInto a
// caller-owned frame, the COW tables) and are pinned at 0 allocs/op by
// the alloc-budget CI job:
//
//	go test ./internal/core -bench='Forward|Encap' -benchmem
func benchmarkForwarding(b *testing.B, vni uint32) {
	eng := sim.NewEngine(1)
	table := ether.NewVNITable[int](eng, 0)
	f := &ether.Frame{
		Dst:     ether.SeqMAC(1),
		Src:     ether.SeqMAC(2),
		Type:    ether.TypeIPv4,
		Payload: make([]byte, 1400),
	}
	table.Learn(vni, f.Dst, 7)
	wire := make([]byte, 0, VNIEncapLen(vni)+f.WireLen())
	var got ether.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire = AppendVNIFrame(wire[:0], vni, f)
		gotVNI, err := UnmarshalVNIFrameInto(&got, wire)
		if err != nil {
			b.Fatal(err)
		}
		table.Learn(gotVNI, got.Src, 7)
		if _, ok := table.Lookup(gotVNI, got.Dst); !ok {
			b.Fatal("lookup miss")
		}
	}
}

func BenchmarkForwardingUntagged(b *testing.B)  { benchmarkForwarding(b, 0) }
func BenchmarkForwardingVNITagged(b *testing.B) { benchmarkForwarding(b, 42) }

// BenchmarkEncapRelayWrap times the relay-envelope form of the encap:
// the frame is encoded once with RelayHeaderLen headroom and the
// 9-byte envelope header is filled in place, the way switchFrame wraps
// frames for brokered tunnels without a second buffer or copy.
func BenchmarkEncapRelayWrap(b *testing.B) {
	f := &ether.Frame{
		Dst:     ether.SeqMAC(1),
		Src:     ether.SeqMAC(2),
		Type:    ether.TypeIPv4,
		Payload: make([]byte, 1400),
	}
	const vni = 42
	buf := make([]byte, rendezvous.RelayHeaderLen, rendezvous.RelayHeaderLen+VNIEncapLen(vni)+f.WireLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := AppendVNIFrame(buf[:rendezvous.RelayHeaderLen], vni, f)
		wire[0] = rendezvous.RelayMagic
		binary.BigEndian.PutUint64(wire[1:], uint64(i))
		if len(wire) != rendezvous.RelayHeaderLen+VNIEncapLen(vni)+f.WireLen() {
			b.Fatal("bad wrap length")
		}
	}
}

// BenchmarkForwardingBatched times the batched egress hot path: per
// frame, the table lookup plus length-prefixed append into a reused
// batch buffer, and on the receive side the batch walk with the
// zero-alloc decode and refresh-learn — one op is a four-frame batch
// round trip. Pinned at 0 allocs/op by the alloc-budget CI job; the
// live path's only residual is the flush-time buffer whose ownership
// transfers to the network (amortized over the whole batch).
// BenchmarkForwardingFlowAccounted times the PR 10 hot path: the
// forwarding round trip of BenchmarkForwardingVNITagged plus inline
// flow accounting on both sides — key extraction from the decoded
// frame and one atomic table update each for tx and rx. Pinned at
// 0 allocs/op by the alloc-budget CI job: telemetry must not cost the
// data plane an allocation.
func BenchmarkForwardingFlowAccounted(b *testing.B) {
	eng := sim.NewEngine(1)
	table := ether.NewVNITable[int](eng, 0)
	ft := NewFlowTable(1024)
	const vni = 42
	f := &ether.Frame{
		Dst:     ether.SeqMAC(1),
		Src:     ether.SeqMAC(2),
		Type:    ether.TypeIPv4,
		Payload: make([]byte, 1400),
	}
	// Real IPv4 header fields so the key parse does its full work.
	f.Payload[9] = 17
	binary.BigEndian.PutUint32(f.Payload[12:], 0x0a000001)
	binary.BigEndian.PutUint32(f.Payload[16:], 0x0a000002)
	table.Learn(vni, f.Dst, 7)
	wire := make([]byte, 0, VNIEncapLen(vni)+f.WireLen())
	var got ether.Frame
	var k FlowKey
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flowKeyOf(&k, vni, f)
		ft.Add(&k, sim.Time(i), uint64(VNIEncapLen(vni)+f.WireLen()))
		wire = AppendVNIFrame(wire[:0], vni, f)
		gotVNI, err := UnmarshalVNIFrameInto(&got, wire)
		if err != nil {
			b.Fatal(err)
		}
		flowKeyOf(&k, gotVNI, &got)
		ft.Add(&k, sim.Time(i), uint64(len(wire)))
		table.Learn(gotVNI, got.Src, 7)
		if _, ok := table.Lookup(gotVNI, got.Dst); !ok {
			b.Fatal("lookup miss")
		}
	}
	if ft.Active() == 0 {
		b.Fatal("no flow accounted")
	}
}

func BenchmarkForwardingBatched(b *testing.B) {
	eng := sim.NewEngine(1)
	table := ether.NewVNITable[int](eng, 0)
	const vni = 42
	f := &ether.Frame{
		Dst:     ether.SeqMAC(1),
		Src:     ether.SeqMAC(2),
		Type:    ether.TypeIPv4,
		Payload: make([]byte, 300),
	}
	table.Learn(vni, f.Dst, 7)
	const headroom = rendezvous.RelayHeaderLen
	buf := make([]byte, headroom+batchHeaderLen, headroom+batchHeaderLen+1500)
	buf[headroom] = paFrameBatch
	var got ether.Frame
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := buf[:headroom+batchHeaderLen]
		for n := 0; n < 4; n++ {
			if _, ok := table.Lookup(vni, f.Dst); !ok {
				b.Fatal("lookup miss")
			}
			wire = appendBatchFrame(wire, vni, f)
		}
		payload := wire[headroom:]
		off := batchHeaderLen
		for off+batchLenBytes <= len(payload) {
			n := int(payload[off])<<8 | int(payload[off+1])
			off += batchLenBytes
			gotVNI, err := UnmarshalVNIFrameInto(&got, payload[off:off+n])
			if err != nil {
				b.Fatal(err)
			}
			table.Learn(gotVNI, got.Src, 7)
			off += n
		}
	}
}
