package core

import (
	"testing"

	"wavnet/internal/ether"
	"wavnet/internal/sim"
)

// The benchmarks below time the per-frame work the WAV-Switch does on
// the hot data-plane path — encapsulate, decapsulate, learn, look up —
// with and without the VNI tag, to show multi-tenancy costs ~nothing:
//
//	go test ./internal/core -bench=Forwarding -benchmem
func benchmarkForwarding(b *testing.B, vni uint32) {
	eng := sim.NewEngine(1)
	table := ether.NewVNITable[int](eng, 0)
	f := &ether.Frame{
		Dst:     ether.SeqMAC(1),
		Src:     ether.SeqMAC(2),
		Type:    ether.TypeIPv4,
		Payload: make([]byte, 1400),
	}
	table.Learn(vni, f.Dst, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := MarshalVNIFrame(vni, f)
		gotVNI, got, err := UnmarshalVNIFrame(wire)
		if err != nil {
			b.Fatal(err)
		}
		table.Learn(gotVNI, got.Src, 7)
		if _, ok := table.Lookup(gotVNI, got.Dst); !ok {
			b.Fatal("lookup miss")
		}
	}
}

func BenchmarkForwardingUntagged(b *testing.B)  { benchmarkForwarding(b, 0) }
func BenchmarkForwardingVNITagged(b *testing.B) { benchmarkForwarding(b, 42) }
