package core

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"wavnet/internal/ether"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// ipv4Frame builds a minimal IPv4 frame with the header fields the flow
// key parse reads (protocol, source, destination).
func ipv4Frame(src, dst ether.MAC, proto byte, srcIP, dstIP netsim.IP, size int) *ether.Frame {
	if size < 20 {
		size = 20
	}
	p := make([]byte, size)
	p[9] = proto
	binary.BigEndian.PutUint32(p[12:], uint32(srcIP))
	binary.BigEndian.PutUint32(p[16:], uint32(dstIP))
	return &ether.Frame{Dst: dst, Src: src, Type: ether.TypeIPv4, Payload: p}
}

func TestFlowKeyOf(t *testing.T) {
	var k FlowKey
	ip1, ip2 := netsim.MustParseIP("10.0.0.1"), netsim.MustParseIP("10.0.0.2")
	f := ipv4Frame(ether.SeqMAC(1), ether.SeqMAC(2), 17, ip1, ip2, 100)
	flowKeyOf(&k, 42, f)
	want := FlowKey{VNI: 42, Src: ether.SeqMAC(1), Dst: ether.SeqMAC(2), SrcIP: ip1, DstIP: ip2, Proto: 17}
	if k != want {
		t.Fatalf("ipv4 key = %+v, want %+v", k, want)
	}

	arp := &ether.ARP{Op: ether.ARPRequest, SenderMAC: ether.SeqMAC(1), SenderIP: ip1, TargetIP: ip2}
	af := &ether.Frame{Dst: ether.Broadcast, Src: ether.SeqMAC(1), Type: ether.TypeARP, Payload: arp.Marshal()}
	flowKeyOf(&k, 7, af)
	if k.SrcIP != ip1 || k.DstIP != ip2 || k.Proto != uint16(ether.TypeARP) {
		t.Fatalf("arp key = %+v", k)
	}

	other := &ether.Frame{Dst: ether.SeqMAC(3), Src: ether.SeqMAC(4), Type: 0x88cc, Payload: []byte{1}}
	flowKeyOf(&k, 7, other)
	if k.SrcIP != 0 || k.DstIP != 0 || k.Proto != 0x88cc {
		t.Fatalf("ethertype key = %+v", k)
	}
}

func TestFlowKeyPackRoundTrip(t *testing.T) {
	in := FlowKey{
		VNI: 0xdeadbeef, Src: ether.SeqMAC(250), Dst: ether.Broadcast,
		SrcIP: netsim.MustParseIP("203.0.113.9"), DstIP: netsim.MustParseIP("198.51.100.200"),
		Proto: 0x0806,
	}
	var out FlowKey
	out.unpack(in.pack())
	if in != out {
		t.Fatalf("pack/unpack: %+v != %+v", in, out)
	}
}

func TestFlowTableAccounting(t *testing.T) {
	ft := NewFlowTable(64)
	k := FlowKey{VNI: 1, Src: ether.SeqMAC(1), Dst: ether.SeqMAC(2), Proto: 6}
	ft.Add(&k, 10, 100)
	ft.Add(&k, 20, 50)
	ft.Drop(&k, 30, obs.FlowDropQuota)
	k2 := k
	k2.Proto = 17
	ft.Add(&k2, 15, 70)

	if ft.Active() != 2 {
		t.Fatalf("active = %d, want 2", ft.Active())
	}
	snap := ft.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	var tcp *FlowStat
	for i := range snap {
		if snap[i].Key == k {
			tcp = &snap[i]
		}
	}
	if tcp == nil {
		t.Fatal("tcp flow missing from snapshot")
	}
	if tcp.Bytes != 150 || tcp.Frames != 2 || tcp.Drops[obs.FlowDropQuota] != 1 {
		t.Fatalf("tcp stat = %+v", tcp)
	}
	if tcp.First != 10 || tcp.Last != 30 {
		t.Fatalf("tcp first/last = %v/%v", tcp.First, tcp.Last)
	}
}

func TestFlowTableSweepEvictsIdle(t *testing.T) {
	ft := NewFlowTable(64)
	k := FlowKey{VNI: 1, Src: ether.SeqMAC(1), Dst: ether.SeqMAC(2)}
	ft.Add(&k, 0, 10)
	k2 := k
	k2.VNI = 2
	ft.Add(&k2, sim.Time(9*sim.Second), 20)

	var evicted []FlowStat
	left := ft.sweep(sim.Time(10*sim.Second), 5*sim.Second, func(st FlowStat) { evicted = append(evicted, st) })
	if left != 1 || len(evicted) != 1 {
		t.Fatalf("left=%d evicted=%d", left, len(evicted))
	}
	if evicted[0].Key != k || evicted[0].Bytes != 10 {
		t.Fatalf("evicted = %+v", evicted[0])
	}
	if ft.Evictions() != 1 {
		t.Fatalf("evictions = %d", ft.Evictions())
	}
	// The freed slot is reusable: the same key starts a fresh flow.
	ft.Add(&k, sim.Time(11*sim.Second), 5)
	if ft.Active() != 2 {
		t.Fatalf("active after reinsert = %d", ft.Active())
	}
}

func TestFlowTableOverflowShedsSamples(t *testing.T) {
	// A probe window of 16 slots in a 16-slot table saturates fast when
	// every key hashes somewhere in the single window's wraparound.
	ft := NewFlowTable(16)
	base := FlowKey{Src: ether.SeqMAC(1), Dst: ether.SeqMAC(2)}
	for vni := uint32(0); vni < 64; vni++ {
		k := base
		k.VNI = vni
		ft.Add(&k, 0, 1)
	}
	if ft.Active() > 16 {
		t.Fatalf("active %d exceeds table size", ft.Active())
	}
	if ft.Overflows() == 0 {
		t.Fatal("expected overflow samples to be shed")
	}
}

// TestFlowRaceScrapeVsForwarding drives writer-side accounting from one
// goroutine (standing in for the sim event loop) while scrapers
// snapshot concurrently — the seqlock contract the race job checks.
func TestFlowRaceScrapeVsForwarding(t *testing.T) {
	ft := NewFlowTable(128)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, st := range ft.Snapshot() {
					if st.Frames == 0 && st.Bytes != 0 {
						// Torn stats are allowed, an impossible key is not:
						// Frames is bumped with Bytes, so a populated stat
						// with bytes but a zero key would mean identity tore.
						_ = st
					}
				}
				_ = ft.Active()
			}
		}()
	}
	k := FlowKey{Src: ether.SeqMAC(9), Dst: ether.SeqMAC(10)}
	for i := 0; i < 50000; i++ {
		k.VNI = uint32(i % 200)
		ft.Add(&k, sim.Time(i), 64)
		if i%100 == 0 {
			k2 := k
			ft.Drop(&k2, sim.Time(i), obs.FlowDropCrossVNI)
		}
		if i%5000 == 4999 {
			ft.sweep(sim.Time(i), 0, nil)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHostFlowAccounting runs two hosts over a punched tunnel and
// checks both ends account the ping's ICMP flow, that a flow log wired
// through the Config receives eviction records, and that Leave drains
// live flows into it.
func TestHostFlowAccounting(t *testing.T) {
	log := obs.NewFlowLog(0)
	w := buildWorld(t, 11, []nat.Type{nat.FullCone, nat.FullCone},
		[]sim.Duration{15 * time.Millisecond, 22 * time.Millisecond})
	for _, h := range w.hosts {
		h.cfg.FlowLog = log
	}
	w.joinAll(t)
	a, b := w.hosts[0], w.hosts[1]
	dom0 := a.CreateDom0(netsim.MustParseIP("10.9.0.1"))
	b.CreateDom0(netsim.MustParseIP("10.9.0.2"))
	var err error
	w.eng.Spawn("ping", func(p *sim.Proc) {
		if _, err = a.ConnectTo(p, hostName(1)); err != nil {
			return
		}
		_, err = dom0.Ping(p, netsim.MustParseIP("10.9.0.2"), 56, 10*time.Second)
	})
	w.eng.RunFor(20 * time.Second)
	if err != nil {
		t.Fatalf("ping: %v", err)
	}
	sawICMP := func(h *Host) bool {
		for _, st := range h.Flows().Snapshot() {
			if st.Key.Proto == 1 && st.Frames > 0 && st.Bytes > 0 {
				return true
			}
		}
		return false
	}
	if !sawICMP(a) || !sawICMP(b) {
		t.Fatalf("ICMP flow missing: sender=%v receiver=%v", sawICMP(a), sawICMP(b))
	}
	// Leave drains every live flow as a closed record onto the log.
	a.Leave()
	if log.Len() == 0 {
		t.Fatal("flow log empty after Leave drain")
	}
	found := false
	for _, r := range log.Records() {
		if r.Host == a.Name() && r.Proto == 1 && r.Frames > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ICMP record from %s in flow log: %v", a.Name(), log.Records())
	}
	if a.Flows().Active() != 0 {
		t.Fatalf("flows still active after drain: %d", a.Flows().Active())
	}
}

func TestAccountWireDropBatchAndRelay(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	site := nw.NewSite("s")
	phys := nw.NewPublicHost("p", site, netsim.MustParseIP("9.0.0.1"), 0, 0)
	h, err := NewHost(phys, "h", Config{})
	if err != nil {
		t.Fatal(err)
	}

	ip1, ip2 := netsim.MustParseIP("10.0.0.1"), netsim.MustParseIP("10.0.0.2")
	f := ipv4Frame(ether.SeqMAC(1), ether.SeqMAC(2), 17, ip1, ip2, 60)
	const vni = 9

	// Batched payload with two frames, behind a relay envelope.
	buf := make([]byte, rendezvous.RelayHeaderLen+batchHeaderLen, 512)
	buf[0] = rendezvous.RelayMagic
	buf[rendezvous.RelayHeaderLen] = paFrameBatch
	buf = appendBatchFrame(buf, vni, f)
	buf = appendBatchFrame(buf, vni, f)
	h.AccountWireDrop(buf, obs.FlowDropPartition)

	// Single-frame payload, no envelope.
	single := AppendVNIFrame(nil, vni, f)
	h.AccountWireDrop(single, obs.FlowDropWANLoss)

	// Non-frame traffic must be ignored.
	h.AccountWireDrop([]byte{paPulse, 0}, obs.FlowDropWANLoss)

	snap := h.Flows().Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d: %+v", len(snap), snap)
	}
	st := snap[0]
	if st.Drops[obs.FlowDropPartition] != 2 || st.Drops[obs.FlowDropWANLoss] != 1 {
		t.Fatalf("drops = %+v", st.Drops)
	}
	if st.Frames != 0 {
		t.Fatalf("wire drops must not count as forwarded frames: %+v", st)
	}
}

func BenchmarkFlowTableAdd(b *testing.B) {
	ft := NewFlowTable(1024)
	k := FlowKey{VNI: 42, Src: ether.SeqMAC(1), Dst: ether.SeqMAC(2), Proto: 6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Add(&k, sim.Time(i), 1400)
	}
}
