package core

import (
	"encoding/binary"
	"errors"

	"wavnet/internal/ether"
)

// VNI tagging: the Packet Assembler's tunnel encapsulation carries a
// virtual network identifier so many isolated virtual LANs can be
// multiplexed over one shared tunnel mesh (the multi-tenant VPC data
// plane). VNI 0 is the default network and stays on the untagged
// legacy wire format [paFrame][frame]; every other network rides
// [paFrameVNI][vni:4][frame]. A receiving host injects a frame only
// into the bridge of the matching VNI segment — a host with no segment
// for the tag drops the frame, which is what makes broadcast, ARP and
// unicast traffic unable to cross tenants even over shared tunnels.

// VNITagLen is the extra wire overhead of a tagged encapsulation
// relative to the untagged one.
const VNITagLen = 4

// Errors returned by the VNI frame codec.
var (
	ErrShortEncap  = errors.New("core: truncated frame encapsulation")
	ErrBadEncap    = errors.New("core: not a frame encapsulation")
	ErrReservedVNI = errors.New("core: tagged frame carries reserved VNI 0")
)

// MarshalVNIFrame encodes a frame for tunneling within the given
// virtual network: [paFrame][frame] for VNI 0 (backward compatible),
// [paFrameVNI][vni:4][frame] otherwise.
func MarshalVNIFrame(vni uint32, f *ether.Frame) []byte {
	return AppendVNIFrame(nil, vni, f)
}

// AppendVNIFrame appends the frame's tunnel encapsulation to dst and
// returns the extended slice. A dst with enough capacity (VNIEncapLen
// beyond its length) makes the tag path allocation-free — the form the
// forwarding fast path uses with pooled buffers.
func AppendVNIFrame(dst []byte, vni uint32, f *ether.Frame) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, VNIEncapLen(vni)+f.WireLen())...)
	wire := dst[off:]
	if vni == 0 {
		wire[0] = paFrame
		f.MarshalTo(wire[1:])
		return dst
	}
	wire[0] = paFrameVNI
	binary.BigEndian.PutUint32(wire[1:], vni)
	f.MarshalTo(wire[1+VNITagLen:])
	return dst
}

// VNIEncapLen is the encapsulation overhead ahead of the inner frame:
// one PA type byte, plus the tag for a non-default VNI.
func VNIEncapLen(vni uint32) int {
	if vni == 0 {
		return 1
	}
	return 1 + VNITagLen
}

// UnmarshalVNIFrame decodes a tunneled frame encapsulation (either
// wire format), returning the VNI it is tagged with. The frame payload
// aliases b.
func UnmarshalVNIFrame(b []byte) (uint32, *ether.Frame, error) {
	f := new(ether.Frame)
	vni, err := UnmarshalVNIFrameInto(f, b)
	if err != nil {
		return 0, nil, err
	}
	return vni, f, nil
}

// UnmarshalVNIFrameInto decodes the encapsulation into a caller-owned
// frame, returning the VNI. The untag path allocates nothing; the frame
// payload aliases b.
func UnmarshalVNIFrameInto(f *ether.Frame, b []byte) (uint32, error) {
	if len(b) == 0 {
		return 0, ErrShortEncap
	}
	switch b[0] {
	case paFrame:
		if err := ether.UnmarshalFrameInto(f, b[1:]); err != nil {
			return 0, err
		}
		return 0, nil
	case paFrameVNI:
		if len(b) < 1+VNITagLen+ether.HeaderLen {
			return 0, ErrShortEncap
		}
		vni := binary.BigEndian.Uint32(b[1:])
		if vni == 0 {
			return 0, ErrReservedVNI
		}
		if err := ether.UnmarshalFrameInto(f, b[1+VNITagLen:]); err != nil {
			return 0, err
		}
		return vni, nil
	default:
		return 0, ErrBadEncap
	}
}
