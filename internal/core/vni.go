package core

import (
	"encoding/binary"
	"errors"

	"wavnet/internal/ether"
)

// VNI tagging: the Packet Assembler's tunnel encapsulation carries a
// virtual network identifier so many isolated virtual LANs can be
// multiplexed over one shared tunnel mesh (the multi-tenant VPC data
// plane). VNI 0 is the default network and stays on the untagged
// legacy wire format [paFrame][frame]; every other network rides
// [paFrameVNI][vni:4][frame]. A receiving host injects a frame only
// into the bridge of the matching VNI segment — a host with no segment
// for the tag drops the frame, which is what makes broadcast, ARP and
// unicast traffic unable to cross tenants even over shared tunnels.

// VNITagLen is the extra wire overhead of a tagged encapsulation
// relative to the untagged one.
const VNITagLen = 4

// Errors returned by the VNI frame codec.
var (
	ErrShortEncap  = errors.New("core: truncated frame encapsulation")
	ErrBadEncap    = errors.New("core: not a frame encapsulation")
	ErrReservedVNI = errors.New("core: tagged frame carries reserved VNI 0")
)

// MarshalVNIFrame encodes a frame for tunneling within the given
// virtual network: [paFrame][frame] for VNI 0 (backward compatible),
// [paFrameVNI][vni:4][frame] otherwise.
func MarshalVNIFrame(vni uint32, f *ether.Frame) []byte {
	if vni == 0 {
		wire := make([]byte, 1+f.WireLen())
		wire[0] = paFrame
		f.MarshalTo(wire[1:])
		return wire
	}
	wire := make([]byte, 1+VNITagLen+f.WireLen())
	wire[0] = paFrameVNI
	binary.BigEndian.PutUint32(wire[1:], vni)
	f.MarshalTo(wire[1+VNITagLen:])
	return wire
}

// UnmarshalVNIFrame decodes a tunneled frame encapsulation (either
// wire format), returning the VNI it is tagged with. The frame payload
// aliases b.
func UnmarshalVNIFrame(b []byte) (uint32, *ether.Frame, error) {
	if len(b) == 0 {
		return 0, nil, ErrShortEncap
	}
	switch b[0] {
	case paFrame:
		f, err := ether.UnmarshalFrame(b[1:])
		if err != nil {
			return 0, nil, err
		}
		return 0, f, nil
	case paFrameVNI:
		if len(b) < 1+VNITagLen+ether.HeaderLen {
			return 0, nil, ErrShortEncap
		}
		vni := binary.BigEndian.Uint32(b[1:])
		if vni == 0 {
			return 0, nil, ErrReservedVNI
		}
		f, err := ether.UnmarshalFrame(b[1+VNITagLen:])
		if err != nil {
			return 0, nil, err
		}
		return vni, f, nil
	default:
		return 0, nil, ErrBadEncap
	}
}
