package core

import (
	"encoding/binary"
	"sort"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// Tenant service VIPs on the data plane. A VIP is an IP address with no
// NIC of its own: healthy backends accept traffic for it as a stack
// alias, and the *steering* decision — which backend a client's frames
// actually reach — is made per host, in MAC terms. Each member host of
// a network holds a VIP table mapping (VNI, VIP) to a preference-ordered
// backend list (the service controller pre-sorts it per host: declared
// order for failover-ordered services, locator distance for
// anycast-nearest, so two hosts may prefer different backends). The
// host then:
//
//   - answers ARP requests for the VIP on its local bridge with the
//     first healthy backend's MAC (a proxy-ARP responder — the request
//     never floods the WAN);
//   - injects a local gratuitous ARP whenever its choice changes, so
//     established client caches re-point without waiting for re-ARP;
//   - applies paVIPAnnounce (0x19) health updates flooded over the
//     tunnel mesh when probes withdraw or recover a backend.
//
// The synthesized ARP frames carry vipResponderMAC as their *frame*
// source: the client learns the binding from the ARP payload, while the
// bridge only ever learns the responder MAC at the tap — injecting the
// backend's own MAC there would mislearn a local backend's port.

// VIPBackend is one backend in a host's per-VIP preference list.
type VIPBackend struct {
	Name    string
	MAC     ether.MAC
	Healthy bool
}

// vipTableEntry is a host's steering state for one VIP.
type vipTableEntry struct {
	backends  []VIPBackend // preference order, most preferred first
	chosen    ether.MAC
	hasChosen bool
}

// vipResponderMAC is the frame-level source of synthesized ARP replies
// and locally injected gratuitous ARPs (0x56 0x49 0x50 = "VIP"). It is
// never the target of real traffic; each host's bridge learns it at the
// tap port, harmlessly.
var vipResponderMAC = ether.MAC{0x02, 0x57, 0x56, 0x49, 0x50, 0x01}

// SetVIPBackends installs (or replaces) the preference-ordered backend
// list for one VIP on this host. The reconciler pushes it to every
// member of the network on service create/update; the probe loop pushes
// again on health transitions. A change of the effective choice injects
// a gratuitous ARP into the local bridge segment.
func (h *Host) SetVIPBackends(vni uint32, vip netsim.IP, backends []VIPBackend) {
	vips, ok := h.vips[vni]
	if !ok {
		vips = make(map[netsim.IP]*vipTableEntry)
		h.vips[vni] = vips
	}
	e, ok := vips[vip]
	if !ok {
		e = &vipTableEntry{}
		vips[vip] = e
	}
	e.backends = append(e.backends[:0], backends...)
	h.refreshVIPChoice(vni, vip, e)
}

// ClearVIP removes a VIP from the host's steering table (service
// eviction). In-flight connections to the last chosen backend break as
// their ARP entries age out, exactly like a withdrawn service should.
func (h *Host) ClearVIP(vni uint32, vip netsim.IP) {
	if vips, ok := h.vips[vni]; ok {
		delete(vips, vip)
		if len(vips) == 0 {
			delete(h.vips, vni)
		}
	}
}

// VIPChoice reports the backend MAC this host currently steers the VIP
// to (false when the VIP is unknown here or no backend is healthy).
func (h *Host) VIPChoice(vni uint32, vip netsim.IP) (ether.MAC, bool) {
	if vips, ok := h.vips[vni]; ok {
		if e, ok := vips[vip]; ok && e.hasChosen {
			return e.chosen, true
		}
	}
	return ether.MAC{}, false
}

// applyVIPHealth updates one backend's health bit (by name) in the VIP
// table — the receive side of paVIPAnnounce and the local side of the
// probe loop. Unknown VIPs and backends are ignored: the reconciler's
// table push is authoritative for membership.
func (h *Host) applyVIPHealth(vni uint32, vip netsim.IP, backend string, healthy bool) {
	vips, ok := h.vips[vni]
	if !ok {
		return
	}
	e, ok := vips[vip]
	if !ok {
		return
	}
	changed := false
	for i := range e.backends {
		if e.backends[i].Name == backend && e.backends[i].Healthy != healthy {
			e.backends[i].Healthy = healthy
			changed = true
		}
	}
	if changed {
		h.refreshVIPChoice(vni, vip, e)
	}
}

// refreshVIPChoice recomputes the first-healthy choice and, when it
// changed to a live backend, injects a gratuitous ARP into the local
// segment so established client caches re-point immediately.
func (h *Host) refreshVIPChoice(vni uint32, vip netsim.IP, e *vipTableEntry) {
	var mac ether.MAC
	has := false
	for _, b := range e.backends {
		if b.Healthy {
			mac, has = b.MAC, true
			break
		}
	}
	if has == e.hasChosen && mac == e.chosen {
		return
	}
	e.chosen, e.hasChosen = mac, has
	if !has {
		return
	}
	seg, ok := h.segments[vni]
	if !ok {
		return
	}
	h.VIPSteers++
	arp := &ether.ARP{Op: ether.ARPRequest, SenderMAC: mac, SenderIP: vip, TargetIP: vip}
	seg.tap.Send(&ether.Frame{
		Dst: ether.Broadcast, Src: vipResponderMAC,
		Type: ether.TypeARP, Payload: arp.Marshal(),
	})
}

// handleVIPARP intercepts ARP requests for known VIPs on their way out
// of the local bridge and answers them from the steering table. A
// handled request is fully consumed (it never floods the WAN — every
// member host answers its own clients). Gratuitous ARPs (sender ==
// target) and VIPs with no healthy backend pass through untouched: the
// former must keep flooding, the latter correctly goes unanswered.
func (h *Host) handleVIPARP(seg *segment, f *ether.Frame) bool {
	if f.Type != ether.TypeARP {
		return false
	}
	vips, ok := h.vips[seg.vni]
	if !ok || len(vips) == 0 {
		return false
	}
	a, err := ether.UnmarshalARP(f.Payload)
	if err != nil || a.Op != ether.ARPRequest || a.SenderIP == a.TargetIP {
		return false
	}
	e, ok := vips[a.TargetIP]
	if !ok || !e.hasChosen {
		return false
	}
	h.VIPARPProxied++
	reply := &ether.ARP{
		Op: ether.ARPReply, SenderMAC: e.chosen, SenderIP: a.TargetIP,
		TargetMAC: a.SenderMAC, TargetIP: a.SenderIP,
	}
	seg.tap.Send(&ether.Frame{
		Dst: f.Src, Src: vipResponderMAC,
		Type: ether.TypeARP, Payload: reply.Marshal(),
	})
	return true
}

// ---- paVIPAnnounce (0x19): health transitions on the wire ----

// marshalVIPAnnounce encodes a VIP health transition:
// [0x19][flags:1][vni:4][vip:4][mac:6][nameLen:1][name], flags bit 0 =
// healthy. It is flooded over the tunnel mesh so every member host's
// steering table converges without a broker round trip.
func marshalVIPAnnounce(vni uint32, vip netsim.IP, mac ether.MAC, backend string, healthy bool) []byte {
	wire := make([]byte, 17+len(backend))
	wire[0] = paVIPAnnounce
	if healthy {
		wire[1] = 0x01
	}
	binary.BigEndian.PutUint32(wire[2:], vni)
	binary.BigEndian.PutUint32(wire[6:], uint32(vip))
	copy(wire[10:16], mac[:])
	wire[16] = byte(len(backend))
	copy(wire[17:], backend)
	return wire
}

// unmarshalVIPAnnounce decodes a 0x19 packet.
func unmarshalVIPAnnounce(b []byte) (vni uint32, vip netsim.IP, mac ether.MAC, backend string, healthy bool, ok bool) {
	if len(b) < 17 || b[0] != paVIPAnnounce {
		return 0, 0, ether.MAC{}, "", false, false
	}
	n := int(b[16])
	if len(b) < 17+n {
		return 0, 0, ether.MAC{}, "", false, false
	}
	healthy = b[1]&0x01 != 0
	vni = binary.BigEndian.Uint32(b[2:])
	vip = netsim.IP(binary.BigEndian.Uint32(b[6:]))
	copy(mac[:], b[10:16])
	return vni, vip, mac, string(b[17 : 17+n]), healthy, true
}

// AnnounceVIP floods a backend health transition to every established
// tunnel (suppressed, like data frames, toward far ends that carry
// neither the VNI nor a peered one) and applies it locally.
func (h *Host) AnnounceVIP(vni uint32, vip netsim.IP, mac ether.MAC, backend string, healthy bool) {
	wire := marshalVIPAnnounce(vni, vip, mac, backend, healthy)
	for _, t := range h.sortedTunnels() {
		if !t.established || !h.floodUseful(t, vni) {
			continue
		}
		h.VIPAnnouncesOut++
		h.tunnelSend(t, wire)
	}
	h.applyVIPHealth(vni, vip, backend, healthy)
}

// onVIPAnnounce applies a 0x19 packet received from an established peer.
func (h *Host) onVIPAnnounce(payload []byte) {
	vni, vip, _, backend, healthy, ok := unmarshalVIPAnnounce(payload)
	if !ok {
		return
	}
	h.VIPAnnouncesIn++
	h.applyVIPHealth(vni, vip, backend, healthy)
}

// ---- rendezvous-layer VIP records ----

// AnnounceVIPRecord publishes a healthy-backend record through the home
// broker (fire-and-forget, like RTT reports) and remembers it so broker
// failover and restart can re-assert it — the broker-side record is
// otherwise lost with the broker.
func (h *Host) AnnounceVIPRecord(rec rendezvous.VIPRecord) {
	if !h.joined {
		return
	}
	h.vipRecords[rec.Net+"/"+rec.Service+"/"+rec.Backend] = rec
	h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{
		Kind: "vip-announce", Name: h.name, VIP: &rec,
	}))
}

// WithdrawVIPRecord retracts a previously announced record (probe
// failure or service eviction).
func (h *Host) WithdrawVIPRecord(rec rendezvous.VIPRecord) {
	delete(h.vipRecords, rec.Net+"/"+rec.Service+"/"+rec.Backend)
	if !h.joined {
		return
	}
	h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{
		Kind: "vip-withdraw", Name: h.name, VIP: &rec,
	}))
}

// reannounceVIPRecords re-asserts every announced VIP record with the
// (new or restarted) home broker — called after a re-home election and
// after a re-registration, mirroring how the join re-asserts the host's
// own record.
func (h *Host) reannounceVIPRecords() {
	keys := make([]string, 0, len(h.vipRecords))
	for k := range h.vipRecords {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rec := h.vipRecords[k]
		h.sock.SendTo(h.rdv, rendezvous.Encode(&rendezvous.Msg{
			Kind: "vip-announce", Name: h.name, VIP: &rec,
		}))
	}
}

// LookupVIP resolves a service name to its healthy backend records via
// the rendezvous layer, sorted for this host (declared order for
// failover-ordered services, locator distance for anycast-nearest).
func (h *Host) LookupVIP(p *sim.Proc, service string) ([]rendezvous.VIPRecord, error) {
	if !h.joined {
		return nil, ErrNotJoined
	}
	resp, err := h.rpc(p, &rendezvous.Msg{
		Kind: "vip-lookup", Name: h.name, Net: h.network, Service: service,
	})
	if err != nil {
		return nil, err
	}
	return resp.VIPs, nil
}
