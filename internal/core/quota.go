package core

import "wavnet/internal/sim"

// Per-tenant bandwidth quotas: the Packet Assembler meters each
// tenant's encapsulated traffic with a token bucket per (tenant,
// tunnel), so one tenant's bulk transfer cannot starve the shared
// wide-area tunnels for everyone else. Frames that find an empty bucket
// are dropped at the sender (before the wire), exactly like a policer
// on a physical uplink; TCP inside the tenant backs off in response.

// QuotaConfig caps one tenant's send rate on this host.
type QuotaConfig struct {
	// Tenant names the bucket; every VNI mapped to the same tenant
	// shares that tenant's buckets.
	Tenant string
	// RateBps is the sustained rate in bits per second per tunnel.
	RateBps float64
	// BurstBytes is the bucket depth (default 64 KiB).
	BurstBytes int
}

const defaultQuotaBurst = 64 << 10

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.BurstBytes <= 0 {
		q.BurstBytes = defaultQuotaBurst
	}
	return q
}

// tokenBucket is a classic leaky/token bucket in simulated time.
type tokenBucket struct {
	bytesPerSec float64
	burst       float64
	tokens      float64
	last        sim.Time
}

func newTokenBucket(now sim.Time, cfg QuotaConfig) *tokenBucket {
	return &tokenBucket{
		bytesPerSec: cfg.RateBps / 8,
		burst:       float64(cfg.BurstBytes),
		tokens:      float64(cfg.BurstBytes),
		last:        now,
	}
}

// take refills by elapsed simulated time and withdraws n bytes; false
// means the frame exceeds the quota right now and must be dropped.
func (b *tokenBucket) take(now sim.Time, n int) bool {
	if now.Sub(b.last) > 0 {
		b.tokens += now.Sub(b.last).Seconds() * b.bytesPerSec
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// SetVNIQuota maps a VNI to a tenant and caps that tenant's per-tunnel
// send rate on this host. Re-applying an identical configuration is a
// no-op (existing buckets keep their fill level); changing the rate or
// burst resets the tenant's buckets on every tunnel.
func (h *Host) SetVNIQuota(vni uint32, cfg QuotaConfig) {
	cfg = cfg.withDefaults()
	if cur, ok := h.tenantQuota[cfg.Tenant]; ok && cur == cfg && h.vniTenant[vni] == cfg.Tenant {
		return
	}
	h.vniTenant[vni] = cfg.Tenant
	h.tenantQuota[cfg.Tenant] = cfg
	for _, t := range h.tunnels {
		delete(t.quotas, cfg.Tenant)
	}
}

// ClearVNIQuota removes the VNI's quota mapping; its traffic is
// unmetered again.
func (h *Host) ClearVNIQuota(vni uint32) {
	tenant, ok := h.vniTenant[vni]
	if !ok {
		return
	}
	delete(h.vniTenant, vni)
	// Drop the tenant's rate config and buckets once no VNI uses them.
	for _, other := range h.vniTenant {
		if other == tenant {
			return
		}
	}
	delete(h.tenantQuota, tenant)
	for _, t := range h.tunnels {
		delete(t.quotas, tenant)
	}
}

// VNIQuota reports the quota configured for a VNI, if any.
func (h *Host) VNIQuota(vni uint32) (QuotaConfig, bool) {
	tenant, ok := h.vniTenant[vni]
	if !ok {
		return QuotaConfig{}, false
	}
	cfg, ok := h.tenantQuota[tenant]
	return cfg, ok
}

// quotaAdmit charges one outbound wire-frame of the given VNI against
// the tenant's bucket on tunnel t; false means the frame must be
// dropped (and is counted).
func (h *Host) quotaAdmit(t *Tunnel, vni uint32, wireLen int) bool {
	tenant, ok := h.vniTenant[vni]
	if !ok {
		return true
	}
	cfg, ok := h.tenantQuota[tenant]
	if !ok || cfg.RateBps <= 0 {
		return true
	}
	if t.quotas == nil {
		t.quotas = make(map[string]*tokenBucket)
	}
	b, ok := t.quotas[tenant]
	if !ok {
		b = newTokenBucket(h.eng.Now(), cfg)
		t.quotas[tenant] = b
	}
	if !b.take(h.eng.Now(), wireLen) {
		h.QuotaDrops++
		t.QuotaDrops++
		return false
	}
	return true
}
