package core

import (
	"bytes"
	"math/rand"
	"testing"

	"wavnet/internal/ether"
)

func randFrame(rng *rand.Rand, payloadLen int) *ether.Frame {
	f := &ether.Frame{Type: uint16(rng.Intn(1 << 16)), Payload: make([]byte, payloadLen)}
	rng.Read(f.Dst[:])
	rng.Read(f.Src[:])
	rng.Read(f.Payload)
	return f
}

func TestVNIFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, vni := range []uint32{0, 1, 2, 4094, 1 << 24, ^uint32(0)} {
		for _, plen := range []int{0, 1, 46, 1400} {
			f := randFrame(rng, plen)
			wire := MarshalVNIFrame(vni, f)
			// Wire format invariants.
			if vni == 0 {
				if wire[0] != paFrame || len(wire) != 1+f.WireLen() {
					t.Fatalf("vni 0: wrong wire %x len %d", wire[0], len(wire))
				}
			} else {
				if wire[0] != paFrameVNI || len(wire) != 1+VNITagLen+f.WireLen() {
					t.Fatalf("vni %d: wrong wire %x len %d", vni, wire[0], len(wire))
				}
			}
			gotVNI, got, err := UnmarshalVNIFrame(wire)
			if err != nil {
				t.Fatalf("vni %d plen %d: %v", vni, plen, err)
			}
			if gotVNI != vni {
				t.Fatalf("round-trip VNI %d -> %d", vni, gotVNI)
			}
			if got.Dst != f.Dst || got.Src != f.Src || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
				t.Fatalf("vni %d plen %d: frame mangled", vni, plen)
			}
		}
	}
}

func TestVNIFrameTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := randFrame(rng, 64)
	// Every strict prefix that cuts into the header must error, for
	// both wire formats.
	for _, vni := range []uint32{0, 9} {
		wire := MarshalVNIFrame(vni, f)
		minLen := 1 + ether.HeaderLen
		if vni != 0 {
			minLen += VNITagLen
		}
		for cut := 0; cut < minLen; cut++ {
			if _, _, err := UnmarshalVNIFrame(wire[:cut]); err == nil {
				t.Fatalf("vni %d: accepted truncation to %d bytes", vni, cut)
			}
		}
		// Cutting only payload is legal at the codec layer (the frame
		// header is intact); the payload just shrinks.
		if _, got, err := UnmarshalVNIFrame(wire[:minLen+10]); err != nil || len(got.Payload) != 10 {
			t.Fatalf("vni %d: payload cut rejected: %v", vni, err)
		}
	}
	if _, _, err := UnmarshalVNIFrame(nil); err == nil {
		t.Fatal("accepted empty input")
	}
	// An unknown type byte is not a frame encapsulation.
	if _, _, err := UnmarshalVNIFrame([]byte{0x42, 1, 2, 3}); err != ErrBadEncap {
		t.Fatalf("unknown type: %v", err)
	}
	// A tagged frame must not smuggle the reserved VNI 0.
	zero := MarshalVNIFrame(3, f)
	zero[1], zero[2], zero[3], zero[4] = 0, 0, 0, 0
	if _, _, err := UnmarshalVNIFrame(zero); err != ErrReservedVNI {
		t.Fatalf("reserved VNI: %v", err)
	}
}
