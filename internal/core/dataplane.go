package core

import (
	"encoding/binary"
	"sync/atomic"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
	"wavnet/internal/stun"
)

// onPacket demultiplexes everything arriving on the WAVNet socket by the
// first payload byte: JSON control ('{'), STUN (0x00/0x01), or one of
// the Packet Assembler types.
func (h *Host) onPacket(pkt netsim.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	switch pkt.Payload[0] {
	case '{':
		if m, err := rendezvous.Decode(pkt.Payload); err == nil {
			h.onControl(pkt.Src, m)
		}
	case 0x00, 0x01:
		if m, err := stun.Unmarshal(pkt.Payload); err == nil &&
			m.Type == stun.TypeBindingResponse && h.stunWait != nil {
			h.stunWait(m)
		}
	case paPulse:
		h.onPulse(pkt.Src)
	case paFrame, paFrameVNI:
		if t, ok := h.byAddr[pkt.Src]; ok {
			h.onTunnelFrame(t, pkt.Payload)
		}
	case paFrameBatch:
		if t, ok := h.byAddr[pkt.Src]; ok {
			t.lastHeard = h.eng.Now()
			h.onTunnelBatch(t, pkt.Payload)
		}
	case paPunch, paPunchAck:
		h.onPunch(pkt)
	case paEcho:
		h.bounceEcho(nil, pkt.Src, pkt.Payload)
	case paEchoResp:
		h.onEchoResp(pkt.Payload)
	case paVNISet:
		if t, ok := h.byAddr[pkt.Src]; ok {
			h.onVNISet(t, pkt.Payload)
		}
	case paVIPAnnounce:
		if _, ok := h.byAddr[pkt.Src]; ok {
			h.onVIPAnnounce(pkt.Payload)
		}
	case rendezvous.RelayMagic:
		h.onRelayEnvelope(pkt)
	}
}

// onRelayEnvelope unwraps broker-relayed tunnel traffic and dispatches
// the inner packet against the channel's tunnel.
func (h *Host) onRelayEnvelope(pkt netsim.Packet) {
	if len(pkt.Payload) < rendezvous.RelayHeaderLen+1 {
		return
	}
	ch := binary.BigEndian.Uint64(pkt.Payload[1:])
	t, ok := h.byChan[ch]
	if !ok {
		return
	}
	inner := pkt.Payload[rendezvous.RelayHeaderLen:]
	switch inner[0] {
	case paPulse:
		t.PulsesIn++
		t.lastHeard = h.eng.Now()
	case paFrame, paFrameVNI:
		h.onTunnelFrame(t, inner)
	case paFrameBatch:
		t.lastHeard = h.eng.Now()
		h.onTunnelBatch(t, inner)
	case paEcho:
		h.bounceEcho(t, pkt.Src, inner)
	case paEchoResp:
		h.onEchoResp(inner)
	case paVNISet:
		h.onVNISet(t, inner)
	case paVIPAnnounce:
		h.onVIPAnnounce(inner)
	}
}

// tunnelSend transmits one Packet Assembler packet over a tunnel,
// wrapping it in the relay envelope when the tunnel is brokered. The
// envelope is freshly allocated because the broker retains and
// forwards it; the frame fast path avoids this copy entirely by
// encoding with headroom (see switchFrame).
func (h *Host) tunnelSend(t *Tunnel, b []byte) {
	if !t.Relayed {
		h.sock.SendTo(t.Remote, b)
		return
	}
	wire := make([]byte, rendezvous.RelayHeaderLen+len(b))
	wire[0] = rendezvous.RelayMagic
	binary.BigEndian.PutUint64(wire[1:], t.relayChan)
	copy(wire[rendezvous.RelayHeaderLen:], b)
	h.sock.SendTo(t.Remote, wire)
}

// tunnelSendPooled is tunnelSend for control packets built in a pooled
// buffer whose receive handler does not retain the payload (pulses,
// echo bounces): the buffer is recycled at delivery on the direct path,
// or immediately after the envelope copy on the relayed path.
func (h *Host) tunnelSendPooled(t *Tunnel, buf *[]byte) {
	if !t.Relayed {
		h.sock.SendToPooled(t.Remote, buf)
		return
	}
	h.tunnelSend(t, *buf)
	netsim.PutBuf(buf)
}

// bounceEcho answers a paEcho in place: the payload is copied into a
// pooled buffer with only the type byte flipped, so both bounce paths
// (direct socket, relayed tunnel) share one allocation-free branch.
func (h *Host) bounceEcho(t *Tunnel, src netsim.Addr, payload []byte) {
	buf := netsim.GetBuf()
	*buf = append(*buf, payload...)
	(*buf)[0] = paEchoResp
	if t == nil {
		h.sock.SendToPooled(src, buf)
		return
	}
	h.tunnelSendPooled(t, buf)
}

// pulsePacket builds the 2-byte CONNECT_PULSE in a pooled buffer.
func pulsePacket() *[]byte {
	buf := netsim.GetBuf()
	*buf = append(*buf, paPulse, 0x00)
	return buf
}

// startRelay establishes a brokered tunnel from a relay-order: no
// punching is needed, but an immediate pulse registers our (possibly
// symmetric-NAT) mapping at the relay so the peer's traffic can flow.
func (h *Host) startRelay(rec rendezvous.HostRecord, ch uint64, relay netsim.Addr) {
	t, ok := h.tunnels[rec.Name]
	if ok && t.established && !t.Relayed {
		return // direct path already up; keep it
	}
	if !ok {
		t = &Tunnel{host: h, Peer: rec.Name}
		h.tunnels[rec.Name] = t
	}
	t.Relayed = true
	t.Remote = relay
	t.relayChan = ch
	h.byChan[ch] = t
	t.PulsesOut++
	h.tunnelSendPooled(t, pulsePacket())
	h.establish(t)
}

// onControl handles broker messages: RPC replies and unsolicited punch
// or relay orders. Anything arriving from the home broker's address
// refreshes its liveness clock (home-broker silence drives re-homing).
func (h *Host) onControl(src netsim.Addr, m *rendezvous.Msg) {
	if src == h.rdv {
		h.brokerSeen = h.eng.Now()
	}
	if m.Kind == "pulse-ack" {
		// The keepalive round trip. A broker that restarted answers with
		// an unknown-session code: our registration is gone and must be
		// re-asserted or lookups and connects toward us start failing.
		if src == h.rdv && m.Code == rendezvous.CodeUnknownSession {
			h.reregister()
		}
		return
	}
	if m.Kind == "punch-order" && m.Peer != nil {
		h.startPunch(*m.Peer)
		// A punch-order may double as the reply to our connect RPC; the
		// connect waiter resolves on tunnel establishment instead.
		return
	}
	if m.Kind == "relay-order" && m.Peer != nil && m.RelayChan != 0 {
		h.startRelay(*m.Peer, m.RelayChan, m.RelayAddr)
		return
	}
	if w, ok := h.waiters[m.ID]; ok {
		delete(h.waiters, m.ID)
		w(m)
	}
}

// ---- hole punching ----

// startPunch begins the probe exchange toward a peer's external mapping.
// Both sides do this at roughly the same time (the rendezvous servers
// order both), which opens the NAT mappings along both directions.
func (h *Host) startPunch(rec rendezvous.HostRecord) {
	t, ok := h.tunnels[rec.Name]
	if ok && t.established {
		return
	}
	if !ok {
		t = &Tunnel{host: h, Peer: rec.Name, Remote: rec.Mapped}
		h.tunnels[rec.Name] = t
		h.byAddr[rec.Mapped] = t
	}
	probe := h.punchPacket(paPunch)
	tries := 0
	var tick func()
	tick = func() {
		if t.established || tries >= h.cfg.PunchTries {
			return
		}
		tries++
		h.PunchesSent++
		h.sock.SendTo(t.Remote, probe)
		h.eng.Schedule(h.cfg.PunchInterval, tick)
	}
	tick()
}

// punchPacket is [type][nameLen][name]: the receiver needs to know who is
// knocking.
func (h *Host) punchPacket(typ byte) []byte {
	b := make([]byte, 2+len(h.name))
	b[0] = typ
	b[1] = byte(len(h.name))
	copy(b[2:], h.name)
	return b
}

func (h *Host) onPunch(pkt netsim.Packet) {
	if len(pkt.Payload) < 2 {
		return
	}
	n := int(pkt.Payload[1])
	if len(pkt.Payload) < 2+n {
		return
	}
	peer := string(pkt.Payload[2 : 2+n])
	h.PunchesRecv++
	t, ok := h.tunnels[peer]
	if !ok {
		// Punch from a peer we have no record for yet (their order
		// arrived before ours): adopt the observed address.
		t = &Tunnel{host: h, Peer: peer, Remote: pkt.Src}
		h.tunnels[peer] = t
		h.byAddr[pkt.Src] = t
	}
	// Adopt the observed source (authoritative over the record).
	if t.Remote != pkt.Src {
		delete(h.byAddr, t.Remote)
		t.Remote = pkt.Src
		h.byAddr[pkt.Src] = t
	}
	if pkt.Payload[0] == paPunch {
		h.sock.SendTo(pkt.Src, h.punchPacket(paPunchAck))
	}
	h.establish(t)
}

// establish marks a tunnel live and starts its CONNECT_PULSE keepalive.
func (h *Host) establish(t *Tunnel) {
	t.lastHeard = h.eng.Now()
	if t.established {
		return
	}
	t.established = true
	t.pulser = sim.NewTicker(h.eng, h.cfg.PulsePeriod, func() { h.pulse(t) })
	// Tell the far end which virtual networks we carry, so its flooding
	// can skip this tunnel for tags we would only drop.
	h.tunnelSend(t, h.vniSetPacket())
	t.announcedGen = h.vniGen
	t.sinceAnnounce = 0
	// Wake connect waiters (in registration order, deterministically).
	if ws := h.connWaiters[t.Peer]; len(ws) > 0 {
		delete(h.connWaiters, t.Peer)
		for _, w := range ws {
			w.fn()
		}
	}
}

// pulse sends the 2-byte CONNECT_PULSE and applies dead-peer detection.
func (h *Host) pulse(t *Tunnel) {
	if h.eng.Now().Sub(t.lastHeard) > h.cfg.TunnelTimeout {
		h.dropTunnel(t)
		return
	}
	t.PulsesOut++
	h.tunnelSendPooled(t, pulsePacket())
	// Ride the keepalive tick to recover lost VNI announcements: resent
	// immediately when the segment set changed, else only every
	// vniRefreshPulses (the keepalive itself stays 2 bytes).
	h.maybeAnnounceVNIs(t)
}

func (h *Host) onPulse(src netsim.Addr) {
	if t, ok := h.byAddr[src]; ok {
		t.PulsesIn++
		t.lastHeard = h.eng.Now()
	}
}

// ---- tunnel RTT probes ----

// TunnelRTT measures the round-trip time over an established tunnel.
func (h *Host) TunnelRTT(p *sim.Proc, peer string) (sim.Duration, error) {
	t, ok := h.tunnels[peer]
	if !ok || !t.established {
		return 0, ErrNoSuchTunnel
	}
	h.nextEcho++
	id := h.nextEcho
	b := make([]byte, 17)
	b[0] = paEcho
	binary.BigEndian.PutUint64(b[1:], id)
	binary.BigEndian.PutUint64(b[9:], uint64(h.eng.Now()))
	var rtt sim.Duration
	done := false
	h.echoWaiters[id] = func(d sim.Duration) {
		rtt = d
		done = true
		p.Unpark()
	}
	h.tunnelSend(t, b)
	timer := sim.NewTimer(h.eng, func() {
		if _, live := h.echoWaiters[id]; live {
			delete(h.echoWaiters, id)
			done = true
			p.Unpark()
		}
	})
	timer.Reset(h.cfg.RPCTimeout)
	for !done {
		if !p.Park() {
			delete(h.echoWaiters, id)
			timer.Stop()
			return 0, ErrInterrupted
		}
	}
	timer.Stop()
	if rtt == 0 {
		return 0, ErrTimeout
	}
	return rtt, nil
}

func (h *Host) onEchoResp(payload []byte) {
	if len(payload) < 17 {
		return
	}
	id := binary.BigEndian.Uint64(payload[1:])
	sent := sim.Time(binary.BigEndian.Uint64(payload[9:]))
	if w, ok := h.echoWaiters[id]; ok {
		delete(h.echoWaiters, id)
		w(h.eng.Now().Sub(sent))
	}
}

// ---- data path: Packet Assembler + WAV-Switch ----

// onTapFrame captures a frame leaving one segment's local bridge and
// switches it onto tunnels: known unicast goes to the one tunnel its
// VNI-scoped table names, everything else floods all established
// tunnels (the WAV-Switch behaves like an Ethernet switch whose ports
// are wide-area connections). The frame is tagged with the segment's
// VNI on the wire; receivers without a segment for that VNI drop it,
// which keeps flooded broadcast and ARP inside the tenant.
func (h *Host) onTapFrame(seg *segment, f *ether.Frame) {
	// Proxy-ARP for service VIPs: a request for a VIP this host steers
	// is answered locally and never floods the WAN (vip.go).
	if h.handleVIPARP(seg, f) {
		return
	}
	if f.WireLen() > h.SegmentMTU(seg.vni)+ether.HeaderLen {
		return // oversized for the tunnel
	}
	if h.cfg.PacketCost > 0 {
		h.eng.Schedule(h.cfg.PacketCost, func() { h.switchFrame(seg, f) })
		return
	}
	h.switchFrame(seg, f)
}

// switchFrame encapsulates one outbound frame and forwards it: known
// unicast to the one tunnel the VNI-scoped table names, everything else
// flooded in deterministic order. Frames are not sent individually:
// each admitted frame is encoded straight into its destination tunnel's
// egress batch (batch.go), which goes out as one aggregated packet —
// with in-place relay headroom per destination, so even a flood
// crossing several relayed tunnels on different channels never copies.
func (h *Host) switchFrame(seg *segment, f *ether.Frame) {
	wireLen := VNIEncapLen(seg.vni) + f.WireLen()
	// Flow accounting: one tx sample per frame offered to the switch
	// (not per flood fan-out); the extracted key stays valid for the
	// quota-drop charges below because send runs inline.
	fk := h.flowTx(seg.vni, f, wireLen)
	send := func(t *Tunnel) {
		// Per-tenant metering: a tenant over its quota drops here, at
		// the sender, per frame and before enqueue — batching never
		// changes which frames the bucket admits.
		if !h.quotaAdmit(t, seg.vni, wireLen) {
			h.flows.Drop(fk, h.eng.Now(), obs.FlowDropQuota)
			return
		}
		t.FramesOut++
		t.BytesOut += uint64(wireLen)
		h.FramesSent++
		h.enqueueFrame(t, seg.vni, f)
	}
	if !f.Dst.IsBroadcast() && !f.Dst.IsMulticast() {
		if t, ok := h.wswitch.Lookup(seg.vni, f.Dst); ok && t.established {
			send(t)
			return
		}
	}
	h.FloodedFrames++
	atomicBump(seg.flood)
	for _, t := range h.sortedTunnels() {
		if !t.established {
			continue
		}
		// Smarter flooding: skip tunnels whose far end announced it
		// has no segment (and no peering route) for this tag — the
		// frame could only die at their isolation check.
		if !h.floodUseful(t, seg.vni) {
			h.SuppressedFloods++
			atomicBump(seg.suppress)
			continue
		}
		send(t)
	}
}

// atomicBump increments a pre-resolved CounterSet handle.
func atomicBump(ctr *uint64) { atomic.AddUint64(ctr, 1) }

// sortedTunnels returns tunnels in deterministic order for flooding.
// The returned slice is a reused scratch: it is only valid until the
// next call, which every caller satisfies by iterating immediately
// (sends schedule events rather than re-entering the switch).
func (h *Host) sortedTunnels() []*Tunnel {
	out := h.floodScratch[:0]
	for _, t := range h.tunnels {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Peer < out[j-1].Peer; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	h.floodScratch = out
	return out
}

// onTunnelFrame decapsulates a frame arriving over a tunnel (payload is
// [paFrame][frame bytes] or [paFrameVNI][vni][frame bytes]), applies
// the tenant isolation check, teaches the VNI's WAV-Switch table where
// the source MAC lives, and injects the frame into the matching
// segment's bridge through its tap.
func (h *Host) onTunnelFrame(t *Tunnel, payload []byte) {
	t.lastHeard = h.eng.Now()
	// The frame itself is the one decap allocation: its payload aliases
	// the wire buffer and the bridge retains both past this event, so
	// neither can come from a pool. The untag decode is allocation-free.
	f := new(ether.Frame)
	vni, err := UnmarshalVNIFrameInto(f, payload)
	if err != nil {
		return
	}
	t.FramesIn++
	t.BytesIn += uint64(len(payload))
	h.FramesRecv++
	seg, ok := h.segments[vni]
	if !ok {
		// No segment for the tag: either a peered network's traffic —
		// the inter-VNI gateway re-injects it when policy allows — or
		// another tenant's, which is never learned and never injected.
		if h.gatewayInject(t, vni, f) {
			return
		}
		h.CrossVNIDrops++
		h.flowDrop(vni, f, obs.FlowDropCrossVNI)
		return
	}
	h.flowRx(vni, f, len(payload))
	h.wswitch.Learn(vni, f.Src, t)
	if h.cfg.PacketCost > 0 {
		h.eng.Schedule(h.cfg.PacketCost, func() { seg.tap.Send(f) })
		return
	}
	seg.tap.Send(f)
}
