package core

import (
	"bytes"
	"encoding/binary"
	"testing"

	"wavnet/internal/ether"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// The zero-alloc invariant of the forwarding fast path, pinned as unit
// tests: the VNI tag/untag codec and the relay-envelope wrap must not
// allocate when given caller-owned scratch. (The live path's residual
// allocations are only the per-frame wire buffer and decap Frame whose
// ownership transfers to the network and bridge.)

func allocTestFrame() *ether.Frame {
	return &ether.Frame{
		Dst:     ether.SeqMAC(1),
		Src:     ether.SeqMAC(2),
		Type:    ether.TypeIPv4,
		Payload: []byte("the quick brown fox jumps over the lazy dog"),
	}
}

func TestVNITagUntagRoundTripAllocs(t *testing.T) {
	for _, vni := range []uint32{0, 42} {
		f := allocTestFrame()
		wire := make([]byte, 0, VNIEncapLen(vni)+f.WireLen())
		var got ether.Frame
		allocs := testing.AllocsPerRun(100, func() {
			wire = AppendVNIFrame(wire[:0], vni, f)
			gotVNI, err := UnmarshalVNIFrameInto(&got, wire)
			if err != nil {
				t.Fatal(err)
			}
			if gotVNI != vni {
				t.Fatalf("vni = %d, want %d", gotVNI, vni)
			}
		})
		if allocs != 0 {
			t.Errorf("vni %d tag/untag round trip: %.1f allocs/op, want 0", vni, allocs)
		}
		if got.Dst != f.Dst || got.Src != f.Src || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: got %+v", got)
		}
	}
}

func TestRelayWrapAllocs(t *testing.T) {
	const vni, ch = uint32(42), uint64(7)
	f := allocTestFrame()
	buf := make([]byte, rendezvous.RelayHeaderLen, rendezvous.RelayHeaderLen+VNIEncapLen(vni)+f.WireLen())
	var wire []byte
	allocs := testing.AllocsPerRun(100, func() {
		wire = AppendVNIFrame(buf[:rendezvous.RelayHeaderLen], vni, f)
		wire[0] = rendezvous.RelayMagic
		binary.BigEndian.PutUint64(wire[1:], ch)
	})
	if allocs != 0 {
		t.Errorf("relay wrap: %.1f allocs/op, want 0", allocs)
	}
	// The envelope must decode back to the frame it wraps.
	if wire[0] != rendezvous.RelayMagic || binary.BigEndian.Uint64(wire[1:]) != ch {
		t.Fatal("bad relay header")
	}
	gotVNI, got, err := UnmarshalVNIFrame(wire[rendezvous.RelayHeaderLen:])
	if err != nil || gotVNI != vni {
		t.Fatalf("inner decode: vni=%d err=%v", gotVNI, err)
	}
	if got.Dst != f.Dst || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatal("inner frame mismatch")
	}
}

func TestForwardTableAllocs(t *testing.T) {
	// Steady-state switch work: refresh-learn of a known MAC plus the
	// unicast lookup, both against the COW tables.
	f := allocTestFrame()
	table := ether.NewVNITable[int](sim.NewEngine(1), 0)
	table.Learn(42, f.Dst, 1)
	table.Learn(42, f.Src, 2)
	allocs := testing.AllocsPerRun(100, func() {
		table.Learn(42, f.Src, 2)
		if _, ok := table.Lookup(42, f.Dst); !ok {
			t.Fatal("lookup miss")
		}
	})
	if allocs != 0 {
		t.Errorf("forward table steady state: %.1f allocs/op, want 0", allocs)
	}
}
