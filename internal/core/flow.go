package core

import (
	"encoding/binary"
	"sync/atomic"

	"wavnet/internal/ether"
	"wavnet/internal/netsim"
	"wavnet/internal/obs"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// Flow accounting on the hot path.
//
// The table is fixed-size and preallocated: one cache-friendly slot
// array indexed by a mixed hash of the packed flow key, probed linearly
// over a bounded window. All fields are accessed with atomic ops only —
// no locks, no allocation, nothing variable-cost — so the encap/decap/
// drop sites can update it inline without disturbing the ALLOC_BUDGET
// gate, and scrapers may read concurrently from test goroutines while
// the simulation forwards.
//
// Concurrency model (the same split as ether.MACTable's fast path): the
// sim event loop is the only writer — forwarding, drop attribution and
// the eviction sweep all run there — while readers are arbitrary
// goroutines. Counter updates are plain atomic adds; the only races
// that would matter are a slot's identity changing under a reader
// (evict + reinsert), so each slot carries a seqlock generation word:
// the writer makes it odd around any key change, and readers retry when
// the generation moved or was odd. Stats reads between generations may
// be minutely torn (bytes updated, frames not yet) — fine for
// telemetry, never for identity.
//
// Eviction is swept off the fast path on a self-arming sim-time timer:
// flows idle past Config.FlowIdle are emitted to the configured
// obs.FlowLog as closed flow-log records and their slots freed. A full
// probe window counts an overflow and drops the sample rather than
// evicting inline — the hot path never does O(table) work.

// FlowKey identifies one flow: (VNI, src/dst MAC, src/dst IP, proto).
type FlowKey struct {
	VNI          uint32
	Src, Dst     ether.MAC
	SrcIP, DstIP netsim.IP
	// Proto is the IPv4 protocol number for IP frames and the EtherType
	// otherwise (disjoint ranges; see obs.FlowRecord.Proto).
	Proto uint16
}

// flowKeyOf fills k from one tagged frame, mirroring frameDstIP's
// parse: IPv4 frames key on (src IP, dst IP, protocol), ARP frames on
// their sender/target addresses, anything else on the EtherType alone.
func flowKeyOf(k *FlowKey, vni uint32, f *ether.Frame) {
	k.VNI = vni
	k.Src = f.Src
	k.Dst = f.Dst
	k.SrcIP, k.DstIP = 0, 0
	k.Proto = uint16(f.Type)
	switch f.Type {
	case ether.TypeIPv4:
		if len(f.Payload) >= 20 {
			k.SrcIP = netsim.IP(binary.BigEndian.Uint32(f.Payload[12:16]))
			k.DstIP = netsim.IP(binary.BigEndian.Uint32(f.Payload[16:20]))
			k.Proto = uint16(f.Payload[9])
		}
	case ether.TypeARP:
		// Inline sender/target extraction (ether.UnmarshalARP allocates
		// its result; the hot path cannot): offsets per ether.ARP.Marshal.
		if len(f.Payload) >= 28 {
			k.SrcIP = netsim.IP(binary.BigEndian.Uint32(f.Payload[14:18]))
			k.DstIP = netsim.IP(binary.BigEndian.Uint32(f.Payload[24:28]))
		}
	}
}

// macBits packs a MAC into the low 48 bits of a word.
func macBits(m ether.MAC) uint64 {
	return uint64(m[0])<<40 | uint64(m[1])<<32 | uint64(m[2])<<24 |
		uint64(m[3])<<16 | uint64(m[4])<<8 | uint64(m[5])
}

func macOf(w uint64) ether.MAC {
	return ether.MAC{byte(w >> 40), byte(w >> 32), byte(w >> 24),
		byte(w >> 16), byte(w >> 8), byte(w)}
}

// pack folds the key into four words, the slot's stored identity.
func (k *FlowKey) pack() (k0, k1, k2, k3 uint64) {
	return uint64(k.VNI)<<32 | uint64(k.Proto),
		macBits(k.Src), macBits(k.Dst),
		uint64(k.SrcIP)<<32 | uint64(k.DstIP)
}

func (k *FlowKey) unpack(k0, k1, k2, k3 uint64) {
	k.VNI = uint32(k0 >> 32)
	k.Proto = uint16(k0)
	k.Src = macOf(k1)
	k.Dst = macOf(k2)
	k.SrcIP = netsim.IP(k3 >> 32)
	k.DstIP = netsim.IP(k3)
}

// mix64 is the 64-bit finalizer from MurmurHash3: full avalanche over
// the packed key words without touching memory.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// flowSlot is one table entry. gen is the seqlock; the key words and
// live flag only change while it is odd.
type flowSlot struct {
	gen            atomic.Uint64
	live           atomic.Uint64
	k0, k1, k2, k3 atomic.Uint64

	bytes, frames atomic.Uint64
	drops         [obs.FlowDropReasons]atomic.Uint64
	first, last   atomic.Int64
}

// FlowStat is one flow's accounted state, copied out of the table.
type FlowStat struct {
	Key           FlowKey
	Bytes, Frames uint64
	Drops         [obs.FlowDropReasons]uint64
	First, Last   sim.Time
}

// DropTotal sums the stat's drops across reasons.
func (st *FlowStat) DropTotal() uint64 {
	var n uint64
	for _, d := range st.Drops {
		n += d
	}
	return n
}

// Record converts the stat to its flow-log record shape.
func (st *FlowStat) Record(host string) obs.FlowRecord {
	return obs.FlowRecord{
		Host: host,
		VNI:  st.Key.VNI, Src: st.Key.Src, Dst: st.Key.Dst,
		SrcIP: st.Key.SrcIP, DstIP: st.Key.DstIP, Proto: st.Key.Proto,
		Bytes: st.Bytes, Frames: st.Frames, Drops: st.Drops,
		First: st.First, Last: st.Last,
	}
}

const (
	defaultFlowSlots = 1024
	// flowProbeLimit bounds the linear probe: a lookup touches at most
	// this many slots before declaring overflow.
	flowProbeLimit = 16
)

// FlowTable is the fixed-size flow accounting table of one host.
type FlowTable struct {
	slots []flowSlot
	mask  uint64

	active    atomic.Int64
	overflows atomic.Uint64
	evictions atomic.Uint64

	// dropTotals aggregates drops by reason across every flow, including
	// shed and evicted ones, so scrapers and alert rules read one counter
	// per reason instead of summing a snapshot.
	dropTotals [obs.FlowDropReasons]atomic.Uint64
}

// NewFlowTable preallocates a table of at least the given slot count
// (rounded up to a power of two; <=0 uses the default).
func NewFlowTable(slots int) *FlowTable {
	if slots <= 0 {
		slots = defaultFlowSlots
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &FlowTable{slots: make([]flowSlot, n), mask: uint64(n - 1)}
}

// find returns the live slot for k, inserting into a free slot within
// the probe window when absent. nil means the window is saturated
// (counted as an overflow; the sample is shed, never the latency).
// Writer-side only: must run on the sim event loop.
func (ft *FlowTable) find(k *FlowKey, now sim.Time) *flowSlot {
	k0, k1, k2, k3 := k.pack()
	idx := mix64(k0 ^ mix64(k1^mix64(k2^mix64(k3))))
	var free *flowSlot
	for i := uint64(0); i < flowProbeLimit; i++ {
		s := &ft.slots[(idx+i)&ft.mask]
		if s.live.Load() == 0 {
			if free == nil {
				free = s
			}
			continue
		}
		if s.k0.Load() == k0 && s.k1.Load() == k1 && s.k2.Load() == k2 && s.k3.Load() == k3 {
			return s
		}
	}
	if free == nil {
		ft.overflows.Add(1)
		return nil
	}
	free.gen.Add(1) // odd: identity changing
	free.k0.Store(k0)
	free.k1.Store(k1)
	free.k2.Store(k2)
	free.k3.Store(k3)
	free.bytes.Store(0)
	free.frames.Store(0)
	for i := range free.drops {
		free.drops[i].Store(0)
	}
	free.first.Store(int64(now))
	free.last.Store(int64(now))
	free.live.Store(1)
	free.gen.Add(1) // even: slot readable again
	ft.active.Add(1)
	return free
}

// Add accounts one frame of the flow (writer-side).
func (ft *FlowTable) Add(k *FlowKey, now sim.Time, bytes uint64) {
	s := ft.find(k, now)
	if s == nil {
		return
	}
	s.bytes.Add(bytes)
	s.frames.Add(1)
	s.last.Store(int64(now))
}

// Drop accounts one dropped frame of the flow by reason (writer-side).
func (ft *FlowTable) Drop(k *FlowKey, now sim.Time, reason obs.FlowDropReason) {
	ft.dropTotals[reason].Add(1)
	s := ft.find(k, now)
	if s == nil {
		return
	}
	s.drops[reason].Add(1)
	s.last.Store(int64(now))
}

// sweep evicts flows whose last activity is at least idle old, calling
// emit with each evicted flow's final state, and reports how many stay
// live. Writer-side: runs on the sim event loop, off the fast path.
func (ft *FlowTable) sweep(now sim.Time, idle sim.Duration, emit func(FlowStat)) int {
	for i := range ft.slots {
		s := &ft.slots[i]
		if s.live.Load() == 0 {
			continue
		}
		if now.Sub(sim.Time(s.last.Load())) < idle {
			continue
		}
		st := s.stat()
		s.gen.Add(1)
		s.live.Store(0)
		s.gen.Add(1)
		ft.active.Add(-1)
		ft.evictions.Add(1)
		if emit != nil {
			emit(st)
		}
	}
	return int(ft.active.Load())
}

// stat copies the slot (writer-side; no seqlock dance needed).
func (s *flowSlot) stat() FlowStat {
	var st FlowStat
	st.Key.unpack(s.k0.Load(), s.k1.Load(), s.k2.Load(), s.k3.Load())
	st.Bytes = s.bytes.Load()
	st.Frames = s.frames.Load()
	for i := range st.Drops {
		st.Drops[i] = s.drops[i].Load()
	}
	st.First = sim.Time(s.first.Load())
	st.Last = sim.Time(s.last.Load())
	return st
}

// Snapshot copies the live flows out of the table. Safe to call from
// any goroutine while the simulation forwards: each slot is read under
// its seqlock generation and skipped after a few conflicting retries
// (the flow shows up in the next scrape).
func (ft *FlowTable) Snapshot() []FlowStat {
	out := make([]FlowStat, 0, ft.active.Load())
	for i := range ft.slots {
		s := &ft.slots[i]
		for attempt := 0; attempt < 4; attempt++ {
			g := s.gen.Load()
			if g&1 != 0 {
				continue
			}
			if s.live.Load() == 0 {
				break
			}
			st := s.stat()
			if s.gen.Load() != g {
				continue
			}
			out = append(out, st)
			break
		}
	}
	return out
}

// Active reports the live flow count.
func (ft *FlowTable) Active() int { return int(ft.active.Load()) }

// Overflows reports samples shed because the probe window was full.
func (ft *FlowTable) Overflows() uint64 { return ft.overflows.Load() }

// Evictions reports flows swept out of the table.
func (ft *FlowTable) Evictions() uint64 { return ft.evictions.Load() }

// DropTotals reports the table-wide drop counts by reason (survives
// eviction and overflow shedding, unlike per-flow snapshots).
func (ft *FlowTable) DropTotals() [obs.FlowDropReasons]uint64 {
	var out [obs.FlowDropReasons]uint64
	for i := range out {
		out[i] = ft.dropTotals[i].Load()
	}
	return out
}

// ---- host integration ----

// Flows exposes the host's flow accounting table.
func (h *Host) Flows() *FlowTable { return h.flows }

// flowTx accounts one outbound frame offered to the WAV-Switch (once
// per frame, not per flood fan-out) and returns the filled scratch key
// so the caller's drop sites can charge the same flow without
// re-extracting. The returned key is valid until the next flow* call.
func (h *Host) flowTx(vni uint32, f *ether.Frame, wireLen int) *FlowKey {
	k := &h.flowScratch
	flowKeyOf(k, vni, f)
	h.flows.Add(k, h.eng.Now(), uint64(wireLen))
	h.flowTouched()
	return k
}

// flowRx accounts one decapsulated inbound frame.
func (h *Host) flowRx(vni uint32, f *ether.Frame, wireLen int) {
	k := &h.flowScratch
	flowKeyOf(k, vni, f)
	h.flows.Add(k, h.eng.Now(), uint64(wireLen))
	h.flowTouched()
}

// flowDrop charges one dropped frame against its flow by reason.
func (h *Host) flowDrop(vni uint32, f *ether.Frame, reason obs.FlowDropReason) {
	k := &h.flowScratch
	flowKeyOf(k, vni, f)
	h.flows.Drop(k, h.eng.Now(), reason)
	h.flowTouched()
}

// flowTouched arms the idle-eviction sweep: one outstanding timer while
// any flow is live, re-armed by the sweep itself and disarmed when the
// table drains, so idle hosts schedule nothing.
func (h *Host) flowTouched() {
	if h.flowSweepOn {
		return
	}
	h.flowSweepOn = true
	h.eng.Schedule(h.cfg.FlowSweepPeriod, h.flowSweepFn)
}

// flowSweep evicts idle flows off the fast path, emitting each as a
// closed flow-log record.
func (h *Host) flowSweep() {
	if h.flows.sweep(h.eng.Now(), h.cfg.FlowIdle, h.emitFlow) > 0 {
		h.eng.Schedule(h.cfg.FlowSweepPeriod, h.flowSweepFn)
		return
	}
	h.flowSweepOn = false
}

// emitFlow appends one evicted flow to the configured flow log
// (Append is nil-safe, so unconfigured hosts just drop the record).
func (h *Host) emitFlow(st FlowStat) {
	h.cfg.FlowLog.Append(st.Record(h.name))
}

// DrainFlows force-evicts every live flow into the flow log (teardown
// and experiment-end flushing; Leave calls it).
func (h *Host) DrainFlows() {
	h.flows.sweep(h.eng.Now(), 0, h.emitFlow)
}

// AccountWireDrop attributes one wire-level packet loss back to the
// flow(s) it carried. The substrate's drop hook hands the host the
// packet payload it originated (payload is only valid for the call)
// and a reason; the host unwraps a relay envelope if present and walks
// the encapsulated frame image — single, or every entry of a batch —
// charging each frame's flow. Non-frame traffic (control, pulses,
// punches) is ignored. Runs on the sim event loop via the drop hook,
// so the single-writer invariant holds.
func (h *Host) AccountWireDrop(payload []byte, reason obs.FlowDropReason) {
	if len(payload) == 0 {
		return
	}
	if payload[0] == rendezvous.RelayMagic {
		if len(payload) <= rendezvous.RelayHeaderLen {
			return
		}
		payload = payload[rendezvous.RelayHeaderLen:]
	}
	switch payload[0] {
	case paFrame, paFrameVNI:
		h.accountFrameDrop(payload, reason)
	case paFrameBatch:
		off := batchHeaderLen
		for off+batchLenBytes <= len(payload) {
			n := int(payload[off])<<8 | int(payload[off+1])
			off += batchLenBytes
			if n == 0 || off+n > len(payload) {
				return
			}
			h.accountFrameDrop(payload[off:off+n], reason)
			off += n
		}
	}
}

// accountFrameDrop decodes one encapsulated frame image into the reused
// scratch frame and charges its flow.
func (h *Host) accountFrameDrop(image []byte, reason obs.FlowDropReason) {
	vni, err := UnmarshalVNIFrameInto(&h.dropScratch, image)
	if err != nil {
		return
	}
	h.flowDrop(vni, &h.dropScratch, reason)
}
