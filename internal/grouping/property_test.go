package grouping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wavnet/internal/sim"
)

// randMatrix builds a random symmetric latency matrix from quick's
// source material.
func randMatrix(rng *rand.Rand, n int) [][]sim.Duration {
	m := make([][]sim.Duration, n)
	for i := range m {
		m[i] = make([]sim.Duration, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := sim.Duration(1+rng.Intn(400)) * sim.Millisecond
			m[i][j], m[j][i] = d, d
		}
	}
	return m
}

func TestPropertyGroupIsValidSelection(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 3 + int(nRaw)%30 // 3..32
		k := 2 + int(kRaw)%(n-1)
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, n)
		g, err := LocalitySensitive(m, k)
		if err != nil {
			return false
		}
		if len(g) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, idx := range g {
			if idx < 0 || idx >= n || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBruteForceLowerBoundsApproximation(t *testing.T) {
	// The O(N·k) approximation can never beat the exhaustive optimum.
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 4 + int(nRaw)%5 // 4..8 (brute force stays cheap)
		k := 2 + int(kRaw)%3 // 2..4
		if k >= n {
			k = n - 1
		}
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, n)
		approx, err1 := LocalitySensitive(m, k)
		exact, err2 := BruteForce(m, k)
		if err1 != nil || err2 != nil {
			return false
		}
		return MeanLatency(m, exact) <= MeanLatency(m, approx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMeanLatencyPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 12)
		g := []int{1, 4, 7, 9}
		want := MeanLatency(m, g)
		shuffled := append([]int(nil), g...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return MeanLatency(m, shuffled) == want && MaxLatency(m, shuffled) == MaxLatency(m, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaxAtLeastMean(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 16)
		k := 2 + int(kRaw)%10
		g, err := LocalitySensitive(m, k)
		if err != nil {
			return false
		}
		return MaxLatency(m, g) >= MeanLatency(m, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeterministicForSameInput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 20)
		a, err1 := LocalitySensitive(m, 5)
		b, err2 := LocalitySensitive(m, 5)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
