// Package grouping implements the locality-sensitive host selection of
// WAVNet §II.D: given an N×N matrix of mutual network latencies, pick k
// hosts minimizing the mean pairwise latency (Formula (1) of the paper).
//
// Three selectors are provided: the paper's O(N·k) sorted-row
// approximation, exact brute force (for validation at small N), and
// random selection (the baseline of Figure 14).
package grouping

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"wavnet/internal/sim"
)

// ErrTooFewHosts is returned when k exceeds the candidate count.
var ErrTooFewHosts = errors.New("grouping: not enough candidate hosts")

// MeanLatency evaluates Formula (1): the average latency over all
// unordered pairs of the selected hosts.
func MeanLatency(rtts [][]sim.Duration, group []int) sim.Duration {
	if len(group) < 2 {
		return 0
	}
	var sum sim.Duration
	pairs := 0
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			sum += rtts[group[i]][group[j]]
			pairs++
		}
	}
	return sum / sim.Duration(pairs)
}

// MaxLatency reports the largest pairwise latency within the group (the
// upper bound curve of Figure 13).
func MaxLatency(rtts [][]sim.Duration, group []int) sim.Duration {
	var max sim.Duration
	for i := 0; i < len(group); i++ {
		for j := i + 1; j < len(group); j++ {
			if rtts[group[i]][group[j]] > max {
				max = rtts[group[i]][group[j]]
			}
		}
	}
	return max
}

func validate(rtts [][]sim.Duration, k int) (int, error) {
	n := len(rtts)
	for i, row := range rtts {
		if len(row) != n {
			return 0, fmt.Errorf("grouping: matrix row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if k < 2 || k > n {
		return 0, ErrTooFewHosts
	}
	return n, nil
}

// LocalitySensitive runs the paper's approximation: for each host (row),
// sort its latencies ascending and take the k nearest hosts (the
// "k+1-group" including the host itself); generate k candidate k-groups
// per row by keeping the host and leaving one of its k nearest out;
// filter candidates containing an unreasonably large edge; return the
// candidate with minimal mean latency. The number of candidate
// evaluations is O(N·k).
func LocalitySensitive(rtts [][]sim.Duration, k int) ([]int, error) {
	return LocalitySensitiveFiltered(rtts, k, 0)
}

// LocalitySensitiveFiltered is LocalitySensitive with an explicit edge
// cutoff: candidate groups containing a pairwise latency above maxEdge
// are discarded (0 disables the filter, falling back to the best
// remaining candidate as the paper's "reasonable connection" check).
func LocalitySensitiveFiltered(rtts [][]sim.Duration, k int, maxEdge sim.Duration) ([]int, error) {
	n, err := validate(rtts, k)
	if err != nil {
		return nil, err
	}
	if k == n {
		// Selecting everyone: no candidate generation needed (each row's
		// k+1-group would need n+1 hosts).
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	type cand struct {
		group []int
		mean  sim.Duration
	}
	var best *cand    // best candidate passing the filter
	var bestAny *cand // best candidate overall (fallback)
	order := make([]int, n)

	for row := 0; row < n; row++ {
		// Sort hosts by latency from this row's host (the sorted-row
		// invariant the locator maintains incrementally in the paper).
		for i := range order {
			order[i] = i
		}
		r := row
		sort.SliceStable(order, func(a, b int) bool {
			if order[a] == r {
				return true // self first (latency 0)
			}
			if order[b] == r {
				return false
			}
			return rtts[r][order[a]] < rtts[r][order[b]]
		})
		// k+1-group: this host plus its k nearest.
		if n < k+1 {
			continue
		}
		kp1 := order[:k+1]
		// k candidates: keep the row host, drop one of the k nearest.
		for drop := 1; drop <= k; drop++ {
			group := make([]int, 0, k)
			for i, h := range kp1 {
				if i == drop {
					continue
				}
				group = append(group, h)
			}
			mean := MeanLatency(rtts, group)
			maxE := MaxLatency(rtts, group)
			c := &cand{group: group, mean: mean}
			if bestAny == nil || mean < bestAny.mean {
				bestAny = c
			}
			if maxEdge > 0 && maxE > maxEdge {
				continue
			}
			if best == nil || mean < best.mean {
				best = c
			}
		}
	}
	if best == nil {
		best = bestAny
	}
	if best == nil {
		return nil, ErrTooFewHosts
	}
	out := append([]int(nil), best.group...)
	sort.Ints(out)
	return out, nil
}

// BruteForce finds the exact optimum by enumerating all C(N,k) groups.
// Exponential; use only for validation at small N.
func BruteForce(rtts [][]sim.Duration, k int) ([]int, error) {
	n, err := validate(rtts, k)
	if err != nil {
		return nil, err
	}
	var best []int
	var bestMean sim.Duration = 1 << 62
	group := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			if m := MeanLatency(rtts, group); m < bestMean {
				bestMean = m
				best = append(best[:0:0], group...)
			}
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			group[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, nil
}

// Random selects k distinct hosts uniformly — the baseline cluster
// construction of Figure 14.
func Random(rtts [][]sim.Duration, k int, rng *rand.Rand) ([]int, error) {
	n, err := validate(rtts, k)
	if err != nil {
		return nil, err
	}
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	sort.Ints(out)
	return out, nil
}
