package grouping

import (
	"math/rand"
	"testing"
	"time"

	"wavnet/internal/sim"
)

// clusteredMatrix builds n hosts in nClusters tight clusters: intra ~2ms,
// inter ~100ms.
func clusteredMatrix(n, nClusters int, seed int64) [][]sim.Duration {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]sim.Duration, n)
	for i := range m {
		m[i] = make([]sim.Duration, n)
	}
	cluster := make([]int, n)
	for i := range cluster {
		cluster[i] = i % nClusters
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var ms float64
			if cluster[i] == cluster[j] {
				ms = 1 + rng.Float64()*2
			} else {
				ms = 80 + rng.Float64()*60
			}
			d := sim.Duration(ms * float64(time.Millisecond))
			m[i][j], m[j][i] = d, d
		}
	}
	return m
}

func TestMeanMaxLatency(t *testing.T) {
	m := [][]sim.Duration{
		{0, 10 * time.Millisecond, 20 * time.Millisecond},
		{10 * time.Millisecond, 0, 30 * time.Millisecond},
		{20 * time.Millisecond, 30 * time.Millisecond, 0},
	}
	g := []int{0, 1, 2}
	if MeanLatency(m, g) != 20*time.Millisecond {
		t.Fatalf("mean = %v", MeanLatency(m, g))
	}
	if MaxLatency(m, g) != 30*time.Millisecond {
		t.Fatalf("max = %v", MaxLatency(m, g))
	}
	if MeanLatency(m, []int{0}) != 0 {
		t.Fatal("singleton mean should be 0")
	}
}

func TestLocalityFindsCluster(t *testing.T) {
	m := clusteredMatrix(40, 4, 1)
	for _, k := range []int{4, 8, 10} {
		g, err := LocalitySensitive(m, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(g) != k {
			t.Fatalf("k=%d returned %d hosts", k, len(g))
		}
		// All selected hosts should share one cluster (10 hosts each).
		first := g[0] % 4
		for _, h := range g {
			if h%4 != first {
				t.Fatalf("k=%d group spans clusters: %v", k, g)
			}
		}
	}
}

func TestLocalityNearOptimal(t *testing.T) {
	m := clusteredMatrix(14, 3, 2)
	for _, k := range []int{3, 4} {
		approx, err := LocalitySensitive(m, k)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := BruteForce(m, k)
		if err != nil {
			t.Fatal(err)
		}
		am, em := MeanLatency(m, approx), MeanLatency(m, exact)
		if am > 3*em {
			t.Fatalf("k=%d approximation %v far from optimum %v", k, am, em)
		}
	}
}

func TestLocalityBeatsRandom(t *testing.T) {
	m := clusteredMatrix(60, 5, 3)
	rng := rand.New(rand.NewSource(4))
	loc, err := LocalitySensitive(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for trial := 0; trial < 20; trial++ {
		rnd, err := Random(m, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		if MeanLatency(m, rnd) > MeanLatency(m, loc) {
			worse++
		}
	}
	if worse < 18 {
		t.Fatalf("random beat locality-sensitive in %d/20 trials", 20-worse)
	}
}

func TestEdgeFilter(t *testing.T) {
	m := clusteredMatrix(20, 2, 5)
	g, err := LocalitySensitiveFiltered(m, 5, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if MaxLatency(m, g) > 10*time.Millisecond {
		t.Fatalf("filtered group has edge %v > cutoff", MaxLatency(m, g))
	}
}

func TestErrors(t *testing.T) {
	m := clusteredMatrix(5, 1, 6)
	if _, err := LocalitySensitive(m, 6); err == nil {
		t.Fatal("k > N accepted")
	}
	if _, err := LocalitySensitive(m, 1); err == nil {
		t.Fatal("k < 2 accepted")
	}
	bad := [][]sim.Duration{{0}, {0, 0}}
	if _, err := LocalitySensitive(bad, 2); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := BruteForce(m, 9); err == nil {
		t.Fatal("brute force k > N accepted")
	}
	if _, err := Random(m, 9, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("random k > N accepted")
	}
}

func TestBruteForceExactOnTiny(t *testing.T) {
	// Hand-built: hosts 0,1 at 1ms; host 2 at 100ms from both.
	ms := func(v float64) sim.Duration { return sim.Duration(v * float64(time.Millisecond)) }
	m := [][]sim.Duration{
		{0, ms(1), ms(100)},
		{ms(1), 0, ms(100)},
		{ms(100), ms(100), 0},
	}
	g, err := BruteForce(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 || g[0] != 0 || g[1] != 1 {
		t.Fatalf("brute force picked %v, want [0 1]", g)
	}
}
