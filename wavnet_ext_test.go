package wavnet_test

import (
	"strings"
	"testing"
	"time"

	"wavnet"
)

// TestFacadeDHCPAndTracer drives the extension API end-to-end through
// the public facade: a DHCP server on one NATed machine leases an
// address to an unconfigured stack on another, while a tracer captures
// the handshake frames on the client NIC.
func TestFacadeDHCPAndTracer(t *testing.T) {
	world, err := wavnet.NewEmulatedWAN(5, 2, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	a, b := world.Machines[0], world.Machines[1]

	if _, err := wavnet.NewDHCPServer(a.Dom0(), wavnet.DHCPServerConfig{
		PoolStart: mustIP(t, "10.1.0.200"),
		PoolEnd:   mustIP(t, "10.1.0.209"),
	}); err != nil {
		t.Fatal(err)
	}

	vif := b.WAV.AttachVIF("guest0")
	tap := wavnet.AttachTracer(world.Eng, "tcpdump-guest0", vif)
	guest := wavnet.NewStack(world.Eng, "guest", tap, b.WAV.NewMAC(), 0,
		wavnet.StackConfig{MTU: b.WAV.VirtualMTU()})
	client, err := wavnet.NewDHCPClient(guest, wavnet.DHCPClientConfig{})
	if err != nil {
		t.Fatal(err)
	}

	var leased wavnet.IP
	var acqErr error
	world.Eng.Spawn("acquire", func(p *wavnet.Proc) {
		leased, acqErr = client.Acquire(p)
	})
	world.Eng.RunFor(time.Minute)
	if acqErr != nil {
		t.Fatalf("facade DHCP acquire: %v", acqErr)
	}
	if leased != mustIP(t, "10.1.0.200") {
		t.Fatalf("leased %v", leased)
	}

	var sb strings.Builder
	if _, err := tap.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	// DISCOVER leaves on 68->67, the OFFER returns on 67->68.
	if !strings.Contains(dump, ".68 > 255.255.255.255.67") {
		t.Fatalf("capture lacks the broadcast DISCOVER:\n%s", dump)
	}
	if !strings.Contains(dump, ".67 > 255.255.255.255.68") {
		t.Fatalf("capture lacks the broadcast OFFER:\n%s", dump)
	}
}

// TestFacadeBagOfTasks runs a small bag through the public API.
func TestFacadeBagOfTasks(t *testing.T) {
	world, err := wavnet.NewEmulatedWAN(6, 3, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := world.WAVNetUp(); err != nil {
		t.Fatal(err)
	}
	master := world.Machines[0].Dom0()
	var workers []wavnet.Addr
	for _, m := range world.Machines[1:] {
		if _, err := wavnet.StartBagWorker(m.Dom0(), 9000, 1.0); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, wavnet.Addr{IP: m.VIP, Port: 9000})
	}
	bag := wavnet.UniformBag(8, 64<<10, 4<<10, 500*time.Millisecond)
	var run *wavnet.BagRun
	var execErr error
	world.Eng.Spawn("bag", func(p *wavnet.Proc) {
		run, execErr = wavnet.ExecuteBag(p, master, workers, bag, wavnet.BagOptions{})
	})
	world.Eng.RunFor(time.Hour)
	if execErr != nil {
		t.Fatalf("facade bag: %v", execErr)
	}
	if run == nil || len(run.Results) != 8 {
		t.Fatalf("bag incomplete: %+v", run)
	}
	if run.Makespan() < 2*500*time.Millisecond {
		t.Fatalf("makespan %v implausibly low", run.Makespan())
	}
}

func mustIP(t *testing.T, s string) wavnet.IP {
	t.Helper()
	ip, err := wavnet.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return ip
}
