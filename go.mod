module wavnet

go 1.21
