// Package wavnet is the public API of the WAVNet reproduction: a
// layer-2 peer-to-peer VPN for building Virtual Private Clouds over
// NATed wide-area networks, after Xu, Di, Zhang, Cheng and Wang,
// "WAVNet: Wide-Area Network Virtualization Technique for Virtual
// Private Cloud" (ICPP 2011).
//
// Everything runs inside a deterministic discrete-event simulation: you
// build a physical Internet (sites, latencies, NAT gateways), start a
// rendezvous server, join WAVNet hosts to it, connect them with UDP hole
// punching, and then run real protocol stacks — ARP, IPv4, ICMP, UDP,
// TCP — plus VMs with live migration on the resulting virtual LAN.
//
// The quickest way in:
//
//	world, _ := wavnet.NewRealWAN(1)
//	_ = world.WAVNetUp("HKU1", "SIAT")
//	world.Eng.Spawn("demo", func(p *sim.Proc) {
//	    rtt, _ := world.M("HKU1").Dom0().Ping(p, world.M("SIAT").VIP, 56, 5*sim.Second)
//	    fmt.Println("virtual LAN rtt:", rtt)
//	})
//	world.Eng.Run()
//
// The subsystem packages under internal/ do the work; this package
// re-exports the surface a downstream user needs: scenario building,
// hosts, tunnels, VMs, the workload generators, the grouping strategy
// and the experiment harness.
package wavnet

import (
	"math/rand"

	"wavnet/internal/apps"
	"wavnet/internal/bot"
	"wavnet/internal/can"
	"wavnet/internal/core"
	"wavnet/internal/dhcp"
	"wavnet/internal/ether"
	"wavnet/internal/experiments"
	"wavnet/internal/grouping"
	"wavnet/internal/ipstack"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/placement"
	"wavnet/internal/planetlab"
	"wavnet/internal/rendezvous"
	"wavnet/internal/scenario"
	"wavnet/internal/sim"
	"wavnet/internal/trace"
	"wavnet/internal/vm"
	"wavnet/internal/vpc"
)

// Core simulation types.
type (
	// Engine is the discrete-event simulation engine.
	Engine = sim.Engine
	// Proc is a simulation process; blocking APIs take one.
	Proc = sim.Proc
	// Duration is virtual time (an alias of time.Duration).
	Duration = sim.Duration
	// Time is a virtual timestamp.
	Time = sim.Time
)

// Physical network types.
type (
	// IP is an IPv4 address.
	IP = netsim.IP
	// Addr is a UDP/TCP endpoint.
	Addr = netsim.Addr
	// NATType enumerates gateway behaviours.
	NATType = nat.Type
)

// NAT behaviours.
const (
	NATNone               = nat.None
	NATFullCone           = nat.FullCone
	NATRestrictedCone     = nat.RestrictedCone
	NATPortRestrictedCone = nat.PortRestrictedCone
	NATSymmetric          = nat.Symmetric
)

// WAVNet system types.
type (
	// World is a built evaluation topology (physical net + rendezvous).
	World = scenario.World
	// Machine is one physical host of a World.
	Machine = scenario.Machine
	// Spec describes a machine when building custom worlds.
	Spec = scenario.Spec
	// Host is a WAVNet participant (the paper's core contribution).
	Host = core.Host
	// HostConfig tunes a Host.
	HostConfig = core.Config
	// HostRecord is what the rendezvous layer knows about a host.
	HostRecord = rendezvous.HostRecord
	// Point is a multi-attribute resource-state vector (CAN coordinates
	// in [0,1) per dimension).
	Point = can.Point
	// Tunnel is a punched host-to-host connection.
	Tunnel = core.Tunnel
	// Stack is a virtual TCP/IP protocol stack on the WAVNet LAN.
	Stack = ipstack.Stack
	// StackConfig tunes a Stack (MTU, buffers).
	StackConfig = ipstack.Config
	// Conn is a virtual TCP connection.
	Conn = ipstack.Conn
	// NIC is a virtual network interface on the link layer.
	NIC = ether.NIC
	// MAC is an Ethernet hardware address.
	MAC = ether.MAC
	// VM is a migratable virtual machine.
	VM = vm.VM
	// VMConfig tunes a VM (memory, dirty rate, pre-copy bounds).
	VMConfig = vm.Config
	// MigrationReport records one live migration.
	MigrationReport = vm.MigrationReport
)

// Workload generators (the paper's measurement tools).
type (
	// PingRun is an ICMP probe series.
	PingRun = apps.PingRun
	// NetperfRun is a TCP_STREAM measurement.
	NetperfRun = apps.NetperfRun
	// TTCPResult is a ttcp bulk-transfer measurement.
	TTCPResult = apps.TTCPResult
	// ABResult is an ApacheBench-style HTTP load report.
	ABResult = apps.ABResult
	// FetchResult is an scp-style file transfer report.
	FetchResult = apps.FetchResult
	// FileServer serves a catalogue of named synthetic files.
	FileServer = apps.FileServer
)

// Workload launchers.
var (
	// StartPinger launches a ping loop (see apps.StartPinger).
	StartPinger = apps.StartPinger
	// StartNetperf launches a TCP_STREAM run.
	StartNetperf = apps.StartNetperf
	// StartSink starts a discard TCP server.
	StartSink = apps.StartSink
	// StartHTTPServer serves synthetic files.
	StartHTTPServer = apps.StartHTTPServer
	// StartAB launches concurrent HTTP load.
	StartAB = apps.StartAB
	// TTCP performs one bulk transfer.
	TTCP = apps.TTCP
	// StartFileServer serves named files (the paper's FTP/SCP workload).
	StartFileServer = apps.StartFileServer
	// Fetch retrieves one file, scp-style.
	Fetch = apps.Fetch
)

// NewEngine creates a simulation engine with a deterministic seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// NewRealWAN builds the paper's Table I topology: seven Asia-Pacific
// sites around an HKU hub, NAT gateways, and a rendezvous server.
func NewRealWAN(seed int64) (*World, error) {
	return scenario.Build(seed, scenario.RealWANSpecs(), scenario.RealWANOverrides())
}

// NewEmulatedWAN builds the paper's emulated testbed: n NATed PCs whose
// WAN access is shaped to wanBps.
func NewEmulatedWAN(seed int64, n int, wanBps float64) (*World, error) {
	return scenario.Build(seed, scenario.EmulatedWANSpecs(n, wanBps), nil)
}

// NewWorld builds a custom topology from machine specs; overrides pins
// specific pairwise RTTs (keyed by machine-key pairs).
func NewWorld(seed int64, specs []Spec, overrides map[[2]string]Duration) (*World, error) {
	return scenario.Build(seed, specs, overrides)
}

// NewVM boots a virtual machine on a WAVNet host (or an IPOP node).
func NewVM(host vm.HostPort, name string, ip IP, cfg VMConfig) *VM {
	return vm.New(host, name, ip, cfg)
}

// NewStack creates a guest protocol stack on a NIC. Pass ip 0 for an
// unconfigured stack (to be configured by DHCP).
func NewStack(eng *Engine, name string, nic NIC, mac MAC, ip IP, cfg StackConfig) *Stack {
	return ipstack.New(eng, name, nic, mac, ip, cfg)
}

// ParseIP parses a dotted-quad address.
func ParseIP(s string) (IP, error) { return netsim.ParseIP(s) }

// BroadcastIP is the limited-broadcast address 255.255.255.255.
const BroadcastIP = netsim.BroadcastIP

// ---- multi-tenant VPCs (isolated virtual networks over one fabric) ----

type (
	// VPCManager is the multi-tenant control plane: create/delete
	// networks, admit and evict hosts. Worlds expose one via
	// World.VPC(); World.CreateVPC and World.JoinVPC are the
	// high-level path.
	VPCManager = vpc.Manager
	// VPCNetwork is one isolated virtual network (name, VNI, CIDR).
	VPCNetwork = vpc.Network
	// VPCMember is one host's membership (its per-network stack and IP).
	VPCMember = vpc.Member
	// VPCConfig tunes a network at creation (pinned VNI, default flag,
	// static addressing, lease time).
	VPCConfig = vpc.NetworkConfig
	// CIDR is an IPv4 prefix ("10.0.0.0/24").
	CIDR = vpc.CIDR
)

// Tenant API v2: declarative specs reconciled by World.Apply. Declare
// what a tenant's private cloud should look like — networks, members,
// peerings, quota — and Apply converges live state onto it, returning
// the actions taken. Applying an unchanged spec again is a no-op.
type (
	// TenantSpec is the desired state of one tenant's private cloud.
	TenantSpec = vpc.TenantSpec
	// NetworkSpec declares one virtual network (name, CIDR, pinned VNI,
	// member machine keys, addressing mode).
	NetworkSpec = vpc.NetworkSpec
	// PeeringSpec is a policy-carrying route between two of the
	// tenant's networks (allowed destination prefixes per side).
	PeeringSpec = vpc.PeeringSpec
	// VMSpec declares one managed VM: the network and address its vif
	// plugs into, its image geometry, and the member host it should run
	// on ("" lets the placement scheduler choose). Apply converges a
	// changed Host by live migration.
	VMSpec = vpc.VMSpec
	// ServiceSpec declares one L3 service: a VIP (allocated from the
	// network's ServicePool, or pinned inside it) steered across
	// health-checked backends. Apply converges it like any other spec
	// object (service-create/service-update/service-evict).
	ServiceSpec = vpc.ServiceSpec
	// BackendSpec names one backend of a service: a member machine key
	// or a managed VM of the same network (exactly one of the two).
	BackendSpec = vpc.BackendSpec
	// QuotaSpec caps a tenant's send rate per (member host, tunnel) and
	// its VM capacity (count and total memory).
	QuotaSpec = vpc.QuotaSpec
	// ApplyReport lists every action one World.Apply took.
	ApplyReport = vpc.ApplyReport
	// ApplyAction is one state change in an ApplyReport.
	ApplyAction = vpc.Action
)

// Service steering policies (ServiceSpec.Policy).
const (
	// PolicyAnycastNearest steers each client to the nearest healthy
	// backend by the distance locator's RTT matrix.
	PolicyAnycastNearest = rendezvous.PolicyAnycastNearest
	// PolicyFailoverOrdered keeps all traffic on the first healthy
	// backend in declared order.
	PolicyFailoverOrdered = rendezvous.PolicyFailoverOrdered
)

// Federated rendezvous: a network's records replicate only among the
// brokers its spec names (NetworkSpec.Brokers); hosts home on one
// broker (World.SetHome) but connect fabric-wide — cross-broker
// connects are forwarded between brokers.
type (
	// RendezvousServer is one broker of the federation.
	RendezvousServer = rendezvous.Server
	// RendezvousConfig tunes a broker (ports, session TTL, relay
	// fallback, replication batching, broker liveness TTL).
	RendezvousConfig = rendezvous.Config
)

// Chaos harness: deterministic fault injection against the sim clock.
// Schedule broker kills, restarts and WAN partitions with World.Inject
// and assert convergence afterwards — hosts whose home broker dies
// re-home onto another broker of their network's declared set.
type (
	// Fault is one scripted fault of a chaos schedule.
	Fault = scenario.Fault
	// FaultRecord is one executed fault (virtual time + outcome).
	FaultRecord = scenario.FaultRecord
	// FaultInjector tracks a running fault schedule.
	FaultInjector = scenario.FaultInjector
)

// Fault constructors for World.Inject schedules.
var (
	// KillBrokerAt schedules a broker crash (state lost).
	KillBrokerAt = scenario.KillBrokerAt
	// RestartBrokerAt schedules a crashed broker's empty-state restart.
	RestartBrokerAt = scenario.RestartBrokerAt
	// PartitionAt schedules a WAN partition between two endpoints.
	PartitionAt = scenario.PartitionAt
	// HealAt schedules the repair of a WAN partition.
	HealAt = scenario.HealAt
)

// NewVPCManager creates a standalone multi-tenant control plane (for
// custom setups outside a World).
func NewVPCManager() *VPCManager { return vpc.NewManager() }

// ---- tenant-aware VM placement (scheduler + migration-as-convergence) ----

// Declare VMs in a TenantSpec (VMSpec) and World.Apply keeps them where
// the spec says: placement on a member host (scheduler-chosen when
// Host is ""), live migration when the desired host changes, eviction
// when the VM leaves the spec. World.ResolveVM finds managed VMs;
// World.AddVM boots unmanaged ones on the default LAN.
type (
	// PlacementScheduler scores candidate hosts for a VM: locality core
	// first (the distance locator's measured RTTs through the paper's
	// grouping algorithm), then load, constrained to the network's
	// declared brokers.
	PlacementScheduler = placement.Scheduler
	// PlacementConfig tunes the scheduler (core size, RTT edge cutoff).
	PlacementConfig = placement.Config
	// PlacementCandidate is one host eligible to run a VM.
	PlacementCandidate = placement.Candidate
	// PlacementRequest describes the VM that needs a host.
	PlacementRequest = placement.Request
	// PlacementDecision is a choice with its scoring diagnostics.
	PlacementDecision = placement.Decision
)

// NewPlacementScheduler creates a standalone placement scheduler (the
// reconciler keeps its own; this is for custom control planes).
func NewPlacementScheduler(cfg PlacementConfig) *PlacementScheduler { return placement.New(cfg) }

// ParseCIDR parses "a.b.c.d/n".
func ParseCIDR(s string) (CIDR, error) { return vpc.ParseCIDR(s) }

// ---- DHCP over the virtual LAN (paper §II.B's "unmodified protocols") ----

type (
	// DHCPServer leases virtual addresses on a WAVNet LAN segment.
	DHCPServer = dhcp.Server
	// DHCPClient obtains and renews a lease for an unconfigured stack.
	DHCPClient = dhcp.Client
	// DHCPServerConfig tunes the pool and lease policy.
	DHCPServerConfig = dhcp.ServerConfig
	// DHCPClientConfig tunes client retransmission.
	DHCPClientConfig = dhcp.ClientConfig
)

// NewDHCPServer starts a DHCP server on a (statically configured) stack.
func NewDHCPServer(st *Stack, cfg DHCPServerConfig) (*DHCPServer, error) {
	return dhcp.NewServer(st, cfg)
}

// NewDHCPClient creates a DHCP client on an (unconfigured) stack.
func NewDHCPClient(st *Stack, cfg DHCPClientConfig) (*DHCPClient, error) {
	return dhcp.NewClient(st, cfg)
}

// ---- packet tracing (the simulation's tcpdump) ----

type (
	// Tracer is a transparent frame capture on any NIC.
	Tracer = trace.Tracer
	// TraceRecord is one captured frame.
	TraceRecord = trace.Record
	// TraceFilter selects frames to keep.
	TraceFilter = trace.Filter
)

// AttachTracer interposes a tracer on nic; use the tracer as the NIC.
func AttachTracer(eng *Engine, name string, nic NIC) *Tracer {
	return trace.Attach(eng, name, nic)
}

// Trace filters (tcpdump expressions).
var (
	// TraceARPOnly keeps ARP frames.
	TraceARPOnly = trace.ARPOnly
	// TraceGratuitousARPOnly keeps post-migration announcements.
	TraceGratuitousARPOnly = trace.GratuitousARPOnly
	// TraceBroadcast keeps broadcast frames.
	TraceBroadcast = trace.Broadcast
)

// ---- Bag-of-Tasks runtime (the paper's motivating workload) ----

type (
	// BagTask is one unit of Bag-of-Tasks work.
	BagTask = bot.Task
	// BagWorker executes tasks on a stack.
	BagWorker = bot.Worker
	// BagRun reports a completed bag execution.
	BagRun = bot.Run
	// BagOptions tunes scheduling and failure handling.
	BagOptions = bot.Options
)

// StartBagWorker runs a Bag-of-Tasks worker on st:port with a relative
// speed (1.0 = reference machine).
func StartBagWorker(st *Stack, port uint16, speed float64) (*BagWorker, error) {
	return bot.StartWorker(st, port, speed)
}

// ExecuteBag runs tasks on the given workers from master, blocking the
// process until the bag completes.
func ExecuteBag(p *Proc, master *Stack, workers []Addr, tasks []BagTask, opts BagOptions) (*BagRun, error) {
	return bot.Execute(p, master, workers, tasks, opts)
}

// UniformBag builds n identical tasks.
func UniformBag(n, inputBytes, outputBytes int, compute Duration) []BagTask {
	return bot.UniformTasks(n, inputBytes, outputBytes, compute)
}

// ---- locality-sensitive grouping (paper §II.D) ----

// GroupLocality selects k mutually-near hosts from an RTT matrix using
// the paper's O(N·k) approximation.
func GroupLocality(rtts [][]Duration, k int) ([]int, error) {
	return grouping.LocalitySensitive(rtts, k)
}

// GroupRandom is the random-selection baseline.
func GroupRandom(rtts [][]Duration, k int, rng *rand.Rand) ([]int, error) {
	return grouping.Random(rtts, k, rng)
}

// GroupMeanLatency evaluates Formula (1) of the paper for a group.
func GroupMeanLatency(rtts [][]Duration, group []int) Duration {
	return grouping.MeanLatency(rtts, group)
}

// GroupMaxLatency reports the widest edge inside a group.
func GroupMaxLatency(rtts [][]Duration, group []int) Duration {
	return grouping.MaxLatency(rtts, group)
}

// PlanetLabDataset generates the synthetic 400-host latency universe
// used by Figures 12-14.
func PlanetLabDataset(seed int64) *planetlab.Dataset {
	return planetlab.Generate(seed, planetlab.Config{})
}

// ---- experiment harness ----

// ExperimentOptions tunes experiment scale.
type ExperimentOptions = experiments.Options

// Experiments lists every table/figure reproduction.
func Experiments() []experiments.Runner { return experiments.All() }

// Experiment resolves a reproduction by id ("table2", "figure6", ...).
func Experiment(id string) (experiments.Runner, bool) { return experiments.ByID(id) }
