package wavnet

import (
	"fmt"
	"testing"
	"time"

	"wavnet/internal/apps"
	"wavnet/internal/core"
	"wavnet/internal/grouping"
	"wavnet/internal/nat"
	"wavnet/internal/netsim"
	"wavnet/internal/planetlab"
	"wavnet/internal/rendezvous"
	"wavnet/internal/sim"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// CONNECT_PULSE keepalive period and the direct data path (vs routing
// everything through the rendezvous layer, which the paper rejects).

// ablationWorld builds two NATed hosts joined and tunneled.
func ablationWorld(b *testing.B, pulse sim.Duration, natTimeout sim.Duration) (*sim.Engine, []*core.Host, []*nat.Gateway) {
	return ablationWorldNAT(b, pulse, natTimeout, nat.PortRestrictedCone)
}

// ablationWorldNAT is ablationWorld behind a chosen NAT policy (symmetric
// NATs force the broker-relayed path).
func ablationWorldNAT(b *testing.B, pulse sim.Duration, natTimeout sim.Duration, natType nat.Type) (*sim.Engine, []*core.Host, []*nat.Gateway) {
	b.Helper()
	eng := sim.NewEngine(1)
	nw := netsim.New(eng)
	hub := nw.NewSite("hub")
	rdvHost := nw.NewPublicHost("rdv", hub, netsim.MustParseIP("50.0.0.1"), 1e9, time.Millisecond)
	rdv, err := rendezvous.NewServer(rdvHost, netsim.MustParseIP("50.0.0.2"), rendezvous.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rdv.Bootstrap()
	var hosts []*core.Host
	var gws []*nat.Gateway
	for i := 0; i < 2; i++ {
		site := nw.NewSite("s")
		nw.SetRTT(hub, site, 20*time.Millisecond)
		if i == 1 {
			nw.SetRTT(nw.Sites()[1], site, 40*time.Millisecond)
		}
		gw := nw.NewPublicHost("gw", site, netsim.MakeIP(60, byte(i+1), 0, 1), 100e6, 100*time.Microsecond)
		lan := nw.NewLan("lan", site, 1e9, 50*time.Microsecond)
		lan.AttachGateway(gw, netsim.MustParseIP("192.168.0.1"))
		g := nat.Attach(gw, natType)
		g.MappingTimeout = natTimeout
		gws = append(gws, g)
		phys := lan.NewHost("pc", netsim.MustParseIP("192.168.0.2"))
		h, err := core.NewHost(phys, "h"+string(rune('0'+i)), core.Config{PulsePeriod: pulse})
		if err != nil {
			b.Fatal(err)
		}
		hosts = append(hosts, h)
		// Capture the loop variables: under go.mod's go 1.21 semantics
		// the closure otherwise runs with i == 2 and both hosts would
		// create their Dom0 on the same virtual IP.
		i, hh := i, h
		eng.Spawn("join", func(p *sim.Proc) {
			if e := hh.Join(p, rdv.Addr()); e != nil {
				b.Errorf("join: %v", e)
			}
			hh.CreateDom0(netsim.MakeIP(10, 3, 0, byte(i+1)))
		})
	}
	eng.RunFor(20 * time.Second)
	eng.Spawn("connect", func(p *sim.Proc) {
		if _, err := hosts[0].ConnectTo(p, "h1"); err != nil {
			b.Errorf("connect: %v", err)
		}
	})
	eng.RunFor(20 * time.Second)
	return eng, hosts, gws
}

// BenchmarkAblationPulsePeriod sweeps the CONNECT_PULSE period against a
// 60 s NAT timeout and reports whether the tunnel survived one idle hour
// plus the keepalive overhead incurred — the paper's argument for a tiny
// 2-byte pulse at a 5 s period.
func BenchmarkAblationPulsePeriod(b *testing.B) {
	for _, pulse := range []sim.Duration{5 * time.Second, 30 * time.Second, 90 * time.Second} {
		pulse := pulse
		b.Run(pulse.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, hosts, _ := ablationWorld(b, pulse, 60*time.Second)
				eng.RunFor(time.Hour) // idle, keepalives only
				var rtt sim.Duration
				var err error
				eng.Spawn("probe", func(p *sim.Proc) {
					rtt, err = hosts[0].TunnelRTT(p, "h1")
				})
				eng.RunFor(30 * time.Second)
				if i == 0 {
					alive := 0.0
					if err == nil && rtt > 0 {
						alive = 1
					}
					b.ReportMetric(alive, "tunnel-alive")
					tun, ok := hosts[0].Tunnel("h1")
					if ok {
						b.ReportMetric(float64(tun.PulsesOut), "pulses/hour")
						// CONNECT_PULSE is 2 bytes + 28 UDP/IP overhead.
						b.ReportMetric(float64(tun.PulsesOut)*30, "pulse-bytes/hour")
					}
					// The paper's design point: pulses far below NAT
					// timeout keep the tunnel up; slower pulses kill it.
					if pulse < 60*time.Second && alive == 0 {
						b.Fatalf("pulse %v should keep the tunnel alive", pulse)
					}
					if pulse > 60*time.Second && alive == 1 {
						b.Fatalf("pulse %v should let the NAT expire the tunnel", pulse)
					}
				}
			}
		})
	}
}

// BenchmarkAblationRelayVsDirect quantifies what the direct punched path
// saves over the relay fallback: the same bulk transfer runs over a
// punchable NAT pair (direct host-to-host) and over a symmetric pair
// (forwarded through the broker). The relayed path pays two WAN legs and
// the broker's forwarding; the paper's central argument for hole
// punching over traditional relayed VPNs is this gap.
func BenchmarkAblationRelayVsDirect(b *testing.B) {
	for _, mode := range []struct {
		name string
		nat  nat.Type
	}{
		{"direct/port-restricted", nat.PortRestrictedCone},
		{"relayed/symmetric", nat.Symmetric},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng, hosts, _ := ablationWorldNAT(b, 5*time.Second, 120*time.Second, mode.nat)
				tun, ok := hosts[0].Tunnel("h1")
				if !ok || !tun.Established() {
					b.Fatal("tunnel not established")
				}
				wantRelayed := mode.nat == nat.Symmetric
				if tun.Relayed != wantRelayed {
					b.Fatalf("tunnel relayed=%v, want %v", tun.Relayed, wantRelayed)
				}
				if _, err := apps.StartSink(hosts[1].Dom0(), 5001); err != nil {
					b.Fatal(err)
				}
				var res *apps.TTCPResult
				var rtt sim.Duration
				eng.Spawn("ttcp", func(p *sim.Proc) {
					rtt, _ = hosts[0].TunnelRTT(p, "h1")
					r, err := apps.TTCP(p, hosts[0].Dom0(),
						netsim.Addr{IP: hosts[1].Dom0().IP(), Port: 5001}, 8<<20, 16384)
					if err != nil {
						b.Errorf("ttcp: %v", err)
						return
					}
					res = r
				})
				eng.RunFor(10 * time.Minute)
				if i == 0 && res != nil {
					b.ReportMetric(res.KBps*8/1000, "Mbps")
					b.ReportMetric(float64(rtt)/1e6, "tunnel-rtt-ms")
				}
			}
		})
	}
}

// BenchmarkAblationGroupingComplexity contrasts the paper's O(N·k)
// grouping approximation with the O(N^k) brute force it replaces: the
// approximation handles PlanetLab scale (N=400) at any k, while brute
// force is only feasible for toy k — and on those toy cases the
// approximation's mean latency stays within a few percent of optimal.
func BenchmarkAblationGroupingComplexity(b *testing.B) {
	ds := planetlab.Generate(42, planetlab.Config{})
	for _, k := range []int{4, 8, 16, 32, 64} {
		k := k
		b.Run(fmt.Sprintf("locality/N=400/k=%d", k), func(b *testing.B) {
			var group []int
			for i := 0; i < b.N; i++ {
				g, err := grouping.LocalitySensitive(ds.RTT, k)
				if err != nil {
					b.Fatal(err)
				}
				group = g
			}
			b.ReportMetric(float64(grouping.MeanLatency(ds.RTT, group))/1e6, "mean-ms")
		})
	}
	// Brute force comparison on a subsample small enough to finish.
	sub := make([][]sim.Duration, 16)
	for i := range sub {
		sub[i] = append([]sim.Duration(nil), ds.RTT[i][:16]...)
	}
	for _, k := range []int{3, 4} {
		k := k
		b.Run(fmt.Sprintf("bruteforce/N=16/k=%d", k), func(b *testing.B) {
			var exact []int
			for i := 0; i < b.N; i++ {
				g, err := grouping.BruteForce(sub, k)
				if err != nil {
					b.Fatal(err)
				}
				exact = g
			}
			approx, err := grouping.LocalitySensitive(sub, k)
			if err != nil {
				b.Fatal(err)
			}
			exactMean := float64(grouping.MeanLatency(sub, exact))
			approxMean := float64(grouping.MeanLatency(sub, approx))
			b.ReportMetric(exactMean/1e6, "optimal-ms")
			b.ReportMetric(approxMean/exactMean, "approx-ratio")
		})
	}
}

// BenchmarkAblationDataBypass quantifies §II.B's design choice: after
// setup, data flows directly host-to-host. We compare the rendezvous
// server's packet load during a bulk transfer against the data volume —
// in a relay design they would be proportional.
func BenchmarkAblationDataBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng, hosts, _ := ablationWorld(b, 5*time.Second, 120*time.Second)
		rdvHost := hosts[0].Phys().Network().HostByIP(netsim.MustParseIP("50.0.0.1"))
		before := rdvHost.RecvPackets
		if _, err := apps.StartSink(hosts[1].Dom0(), 5001); err != nil {
			b.Fatal(err)
		}
		var moved int64
		eng.Spawn("ttcp", func(p *sim.Proc) {
			res, err := apps.TTCP(p, hosts[0].Dom0(),
				netsim.Addr{IP: hosts[1].Dom0().IP(), Port: 5001}, 16<<20, 16384)
			if err != nil {
				b.Errorf("ttcp: %v", err)
				return
			}
			moved = res.Bytes
		})
		eng.RunFor(5 * time.Minute)
		if i == 0 {
			rdvPkts := rdvHost.RecvPackets - before
			b.ReportMetric(float64(moved)/1e6, "data-MB")
			b.ReportMetric(float64(rdvPkts), "rdv-pkts-during-transfer")
			// ~16 MB of data is >11000 tunnel packets; the broker must
			// see only session pulses (a few dozen).
			if rdvPkts > 200 {
				b.Fatalf("rendezvous server saw %d packets during data transfer; data plane not bypassing it", rdvPkts)
			}
		}
	}
}
