package wavnet

import (
	"fmt"
	"testing"

	"wavnet/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation in quick mode (reduced durations/sizes, same shapes). Run
// with:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each benchmark reports experiment-specific metrics alongside the
// usual ns/op (which here is the wall time of a full scenario build,
// run and measurement).

func runExperiment(b *testing.B, id string, metric func(fmt.Stringer) map[string]float64) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		res, err := r.Run(experiments.Options{Seed: int64(i + 1), Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 {
			if metric != nil {
				for name, v := range metric(res) {
					b.ReportMetric(v, name)
				}
			}
			b.Logf("\n%s", res.String())
		}
	}
}

func BenchmarkTableI(b *testing.B) { runExperiment(b, "table1", nil) }

func BenchmarkTableII(b *testing.B) {
	runExperiment(b, "table2", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.TableIIResult)
		return map[string]float64{
			"wavnet-overhead-us": float64(r.Rows[0].WAVNet-r.Rows[0].Physical) / 1e3,
		}
	})
}

func BenchmarkFigure6(b *testing.B) {
	runExperiment(b, "figure6", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure6Result)
		return map[string]float64{
			"wavnet-rel-bw":    r.Rows[0].WAVNet / r.Rows[0].Physical,
			"ipop-rel-bw":      r.Rows[0].IPOP / r.Rows[0].Physical,
			"wavnet-KBps-64MB": r.Rows[0].WAVNet,
		}
	})
}

func BenchmarkFigure7(b *testing.B) {
	runExperiment(b, "figure7", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure7Result)
		last := r.Rows[len(r.Rows)-1]
		return map[string]float64{
			"wavnet-rel-at-100M": last.WAVNet / last.Physical,
			"ipop-rel-at-100M":   last.IPOP / last.Physical,
		}
	})
}

func BenchmarkFigure8(b *testing.B) {
	runExperiment(b, "figure8", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure8Result)
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		return map[string]float64{
			"wavnet-Mbps-8n":  first.WAVNet,
			"wavnet-Mbps-64n": last.WAVNet,
		}
	})
}

func BenchmarkFigure9(b *testing.B) {
	runExperiment(b, "figure9", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure9Result)
		m := map[string]float64{}
		for _, series := range r.Series {
			m[series.Name+"-mig-s"] = series.MigrationTime.Seconds()
		}
		return m
	})
}

func BenchmarkTableIII(b *testing.B) {
	runExperiment(b, "table3", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.TableIIIResult)
		return map[string]float64{
			"conn-ms-before": r.Rows[1].Mean,
			"conn-ms-after":  r.Rows[3].Mean,
		}
	})
}

func BenchmarkTableIV(b *testing.B) {
	runExperiment(b, "table4", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.TableIVResult)
		return map[string]float64{
			"req1k-before": r.Rows[1].Req1K,
			"req1k-after":  r.Rows[3].Req1K,
		}
	})
}

func BenchmarkFigure10(b *testing.B) {
	runExperiment(b, "figure10", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure10Result)
		m := map[string]float64{}
		for _, run := range r.Runs {
			m[run.Pair+"-downtime-s"] = run.Downtime.Seconds()
		}
		return m
	})
}

func BenchmarkTableV(b *testing.B) {
	runExperiment(b, "table5", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.TableVResult)
		return map[string]float64{
			"offcam-small-s": r.Rows[0].T128.Seconds(),
			"sdsc-small-s":   r.Rows[4].T128.Seconds(),
		}
	})
}

func BenchmarkFigure11(b *testing.B) {
	runExperiment(b, "figure11", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure11Result)
		return map[string]float64{
			"ratio-64":  r.Rows[0].WithOverWithout,
			"ratio-128": r.Rows[1].WithOverWithout,
		}
	})
}

func BenchmarkFigure12(b *testing.B) {
	runExperiment(b, "figure12", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure12Result)
		return map[string]float64{
			"p50-ms": float64(r.Percentile[50]) / 1e6,
			"max-ms": float64(r.MaxRTT) / 1e6,
		}
	})
}

func BenchmarkFigure13(b *testing.B) {
	runExperiment(b, "figure13", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure13Result)
		m := map[string]float64{}
		for _, row := range r.Rows {
			if row.K == 8 || row.K == 64 {
				m[fmt.Sprintf("avg-ms-k%d", row.K)] = float64(row.Avg) / 1e6
			}
		}
		return m
	})
}

func BenchmarkFigure14(b *testing.B) {
	runExperiment(b, "figure14", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.Figure14Result)
		m := map[string]float64{}
		for _, row := range r.Rows {
			key := fmt.Sprintf("%s-%dn-speedup", row.Bench, row.Hosts)
			m[key] = float64(row.Random) / float64(row.Locality)
		}
		return m
	})
}

func BenchmarkVPC(b *testing.B) {
	runExperiment(b, "vpc", func(s fmt.Stringer) map[string]float64 {
		r := s.(*experiments.VPCResult)
		m := map[string]float64{}
		for _, row := range r.Rows {
			m[fmt.Sprintf("t%d-setup-s", row.Tenants)] = row.Setup.Seconds()
			m[fmt.Sprintf("t%d-leaked", row.Tenants)] = float64(row.CrossDelivered) + float64(row.LookupLeaks)
		}
		return m
	})
}
