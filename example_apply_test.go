package wavnet_test

import (
	"fmt"
	"strings"
	"time"

	"wavnet"
)

// ExampleWorld_Apply declares a tenant's private cloud — two networks,
// a policy-carrying peering and a rate quota — and converges a world
// onto it. The second Apply of the same spec is a no-op: the report
// comes back empty.
func ExampleWorld_Apply() {
	world, err := wavnet.NewEmulatedWAN(7, 3, 100e6)
	if err != nil {
		panic(err)
	}
	spec := wavnet.TenantSpec{
		Tenant: "acme",
		Networks: []wavnet.NetworkSpec{
			{Name: "web", CIDR: "10.10.0.0/24", Members: []string{"pc00", "pc01"}, StaticAddressing: true},
			{Name: "db", CIDR: "10.20.0.0/24", Members: []string{"pc02"}, StaticAddressing: true},
		},
		Peerings: []wavnet.PeeringSpec{
			// web may reach only the db anchor; db may reach all of web.
			{A: "web", B: "db", AllowB: []string{"10.20.0.1/32"}},
		},
		Quota: wavnet.QuotaSpec{RateBps: 50e6},
	}
	var first, second *wavnet.ApplyReport
	world.Eng.Spawn("apply", func(p *wavnet.Proc) {
		if first, err = world.Apply(p, spec); err != nil {
			return
		}
		second, err = world.Apply(p, spec)
	})
	world.Eng.RunFor(2 * time.Minute)
	if err != nil {
		panic(err)
	}
	for _, a := range first.Actions {
		fmt.Println(strings.TrimSpace(fmt.Sprintf("%s %s %s", a.Op, a.Network, a.Host)))
	}
	fmt.Println("second apply empty:", second.Empty())
	// Output:
	// create-network web
	// create-network db
	// admit web pc00
	// admit web pc01
	// admit db pc02
	// peer web<->db
	// peer-connect web<->db pc00
	// peer-connect web<->db pc01
	// set-quota
	// second apply empty: true
}
